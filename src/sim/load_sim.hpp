// Request-service simulation: FCFS queueing at every device, with a
// pluggable replica-selection policy.
//
// The paper's fairness notion covers requests as well as data ("every
// storage device with x% of the available capacity gets x% of the data and
// the requests").  This simulator replays an open-loop request trace
// against a placement and measures what that fairness buys under a chosen
// read policy: per-device utilization and the response-time SLO quantiles
// (p50/p99/p999).  Each device is an FCFS server with a service-time
// distribution over its speed; which of a ball's k copies serves a request
// is the ReplicaSelector's call (src/sim/replica_selector.hpp), fed by the
// live queue state through QueueView.
//
// Traces come from a WorkloadGenerator (src/sim/workload.hpp): Poisson
// arrivals thinned against the generator's time-varying rate factor (Lewis
// & Shedler), ball popularity from the generator's distribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/cluster/cluster_config.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/replica_selector.hpp"
#include "src/sim/workload.hpp"
#include "src/util/random.hpp"

namespace rds {

class VirtualDisk;

/// Service-time model of one device.
struct ServiceModel {
  /// Distribution of the per-request service time around its mean.
  enum class Shape {
    kDeterministic,  ///< exactly mean_us() every time
    kExponential,    ///< memoryless (M/M/1-style tails)
    kLognormal,      ///< heavy-ish tail, `sigma` shape parameter
  };

  double seek_us = 100.0;      ///< fixed per-request overhead
  double us_per_block = 10.0;  ///< transfer time per request (one block)
  Shape shape = Shape::kDeterministic;
  double sigma = 0.25;  ///< lognormal shape (ignored by the other shapes)

  /// Mean service time; the speed signal selectors see via QueueView.
  [[nodiscard]] double mean_us() const noexcept {
    return seek_us + us_per_block;
  }

  /// One service-time draw (mean mean_us() for every shape).
  [[nodiscard]] double sample_us(Xoshiro256& rng) const;
};

/// One read request in the trace.
struct Request {
  double arrival_us = 0.0;
  std::uint64_t ball = 0;
};

struct DeviceLoad {
  DeviceId uid = kNoDevice;
  std::uint64_t requests = 0;
  double busy_us = 0.0;
  double utilization = 0.0;  ///< busy / makespan
};

/// What one simulation run measured.
struct LoadResult {
  double makespan_us = 0.0;
  double mean_response_us = 0.0;
  double p50_response_us = 0.0;
  double p99_response_us = 0.0;
  double p999_response_us = 0.0;
  double max_response_us = 0.0;
  std::vector<DeviceLoad> devices;  ///< canonical order of `config`

  /// Utilization of the most loaded device -- the saturation signal an SLO
  /// sweep watches (a policy that keeps this low sustains more load).
  [[nodiscard]] double max_utilization() const;
};

/// Generates `count` arrivals from `workload`: a Poisson process at base
/// rate `rate_per_us`, modulated by workload.rate_factor() via thinning
/// (candidates at rate_per_us * max_rate_factor(), kept with probability
/// rate_factor/max), balls from workload.sample() at the accepted times.
/// Arrivals are strictly ordered.  Throws std::invalid_argument for a
/// non-positive or non-finite rate.
[[nodiscard]] std::vector<Request> make_trace(
    const WorkloadGenerator& workload, std::uint64_t count,
    double rate_per_us, Xoshiro256& rng);

/// Replays `trace` (must be sorted by arrival time) against the
/// materialized placement in `map`; `selector` picks the serving copy per
/// request.  `models` maps canonical device index -> service model; pass
/// one entry to use it for every device.  `rng` drives service-time draws
/// and any randomness inside the selector.
[[nodiscard]] LoadResult simulate_load(const ClusterConfig& config,
                                       const BlockMap& map,
                                       std::span<const Request> trace,
                                       std::span<const ServiceModel> models,
                                       ReplicaSelector& selector,
                                       Xoshiro256& rng);

/// Live-disk form: replica locations come from
/// VirtualDisk::try_copy_locations per request (one epoch read each), so
/// the run exercises the same lock-free API a real read path uses.  The
/// device table is fixed at entry from placement_snapshot(); requests whose
/// replicas fall outside it (a concurrent topology change) are counted via
/// rds_loadsim_requests_dropped_total and skipped.
[[nodiscard]] LoadResult simulate_load(const VirtualDisk& disk,
                                       std::span<const Request> trace,
                                       std::span<const ServiceModel> models,
                                       ReplicaSelector& selector,
                                       Xoshiro256& rng);

}  // namespace rds
