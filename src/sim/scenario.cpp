#include "src/sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/checked_math.hpp"

namespace rds {

ClusterConfig paper_heterogeneous_base() {
  std::vector<Device> devices;
  for (std::uint64_t i = 0; i < 8; ++i) {
    devices.push_back(
        {i, 500'000 + i * 100'000, "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

ClusterConfig homogeneous_cluster(std::size_t n, std::uint64_t capacity) {
  std::vector<Device> devices;
  devices.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    devices.push_back({i, capacity, "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<ScenarioPhase> paper_figure2_phases() {
  std::vector<ScenarioPhase> phases;

  ClusterConfig config = paper_heterogeneous_base();
  phases.push_back({"8 disks", config});

  // "To show what happens if we replace smaller bins by bigger ones we added
  //  two times two bins.  The new bins are growing by the same factor as the
  //  first did."  -> continue the +100k ladder.
  config.add_device({8, 1'300'000, "disk-8"});
  config.add_device({9, 1'400'000, "disk-9"});
  phases.push_back({"10 disks", config});

  config.add_device({10, 1'500'000, "disk-10"});
  config.add_device({11, 1'600'000, "disk-11"});
  phases.push_back({"12 disks", config});

  // "Then we removed two times the two smallest bins."
  config.remove_device(0);  // 500k
  config.remove_device(1);  // 600k
  phases.push_back({"10 disks (shrunk)", config});

  config.remove_device(2);  // 700k
  config.remove_device(3);  // 800k
  phases.push_back({"8 disks (shrunk)", config});

  return phases;
}

std::string to_string(EditKind kind) {
  switch (kind) {
    case EditKind::kAddBiggest: return "add biggest";
    case EditKind::kAddSmallest: return "add smallest";
    case EditKind::kRemoveBiggest: return "remove biggest";
    case EditKind::kRemoveSmallest: return "remove smallest";
  }
  return "?";
}

EditResult apply_edit(const ClusterConfig& config, EditKind kind,
                      DeviceId new_uid, std::uint64_t ladder_step) {
  if (config.empty()) throw std::invalid_argument("apply_edit: empty cluster");
  ClusterConfig next = config;
  switch (kind) {
    case EditKind::kAddBiggest: {
      const std::uint64_t cap =
          checked_add(config[0].capacity, ladder_step).value_or_throw();
      next.add_device({new_uid, cap, "added-big"});
      return {std::move(next), new_uid};
    }
    case EditKind::kAddSmallest: {
      const std::uint64_t smallest = config[config.size() - 1].capacity;
      const std::uint64_t cap =
          smallest > ladder_step ? smallest - ladder_step : smallest;
      next.add_device({new_uid, cap, "added-small"});
      return {std::move(next), new_uid};
    }
    case EditKind::kRemoveBiggest: {
      const DeviceId uid = config[0].uid;
      next.remove_device(uid);
      return {std::move(next), uid};
    }
    case EditKind::kRemoveSmallest: {
      const DeviceId uid = config[config.size() - 1].uid;
      next.remove_device(uid);
      return {std::move(next), uid};
    }
  }
  throw std::logic_error("apply_edit: unknown edit kind");
}

}  // namespace rds
