#include "src/sim/load_sim.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "src/metrics/registry.hpp"
#include "src/storage/virtual_disk.hpp"
#include "src/util/gauge_guard.hpp"
#include "src/util/histogram.hpp"

namespace rds {

double LoadResult::max_utilization() const {
  double worst = 0.0;
  for (const DeviceLoad& d : devices) worst = std::max(worst, d.utilization);
  return worst;
}

double ServiceModel::sample_us(Xoshiro256& rng) const {
  const double mean = mean_us();
  switch (shape) {
    case Shape::kDeterministic:
      return mean;
    case Shape::kExponential:
      // Inverse transform; log1p(-u) is exact near u = 0.
      return -mean * std::log1p(-rng.next_unit());
    case Shape::kLognormal: {
      // Box-Muller standard normal; the -sigma^2/2 shift keeps the mean at
      // mean_us() for every sigma.
      const double u1 = 1.0 - rng.next_unit();  // (0, 1]
      const double u2 = rng.next_unit();
      constexpr double kTwoPi = 6.283185307179586;
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
      return mean * std::exp(sigma * z - sigma * sigma / 2.0);
    }
  }
  return mean;
}

std::vector<Request> make_trace(const WorkloadGenerator& workload,
                                std::uint64_t count, double rate_per_us,
                                Xoshiro256& rng) {
  if (!(rate_per_us > 0.0) || std::isinf(rate_per_us)) {
    throw std::invalid_argument("make_trace: rate must be positive and "
                                "finite");
  }
  const double max_factor = workload.max_rate_factor();
  if (!(max_factor > 0.0) || std::isinf(max_factor)) {
    throw std::invalid_argument("make_trace: workload max_rate_factor must "
                                "be positive and finite");
  }
  // Lewis & Shedler thinning: candidate arrivals from a homogeneous Poisson
  // process at the majorant rate, kept with probability rate(t)/majorant.
  const double majorant = rate_per_us * max_factor;
  std::vector<Request> trace;
  trace.reserve(count);
  double t = 0.0;
  while (trace.size() < count) {
    t += -std::log1p(-rng.next_unit()) / majorant;
    if (rng.next_unit() * max_factor < workload.rate_factor(t)) {
      trace.push_back({t, workload.sample(rng, t)});
    }
  }
  return trace;
}

namespace {

/// The simulator's queue state as selectors see it: backlog is how much
/// service time device `dev` still owes ahead of a request arriving `now`.
class FreeAtQueueView final : public QueueView {
 public:
  FreeAtQueueView(const std::vector<double>& free_at,
                  std::span<const ServiceModel> models)
      : free_at_(free_at), models_(models) {}

  void set_now(double now_us) noexcept { now_us_ = now_us; }

  [[nodiscard]] double backlog_us(std::size_t dev) const override {
    return std::max(0.0, free_at_[dev] - now_us_);
  }
  [[nodiscard]] double mean_service_us(std::size_t dev) const override {
    return (models_.size() == 1 ? models_[0] : models_[dev]).mean_us();
  }
  [[nodiscard]] std::size_t device_count() const override {
    return free_at_.size();
  }

 private:
  const std::vector<double>& free_at_;
  std::span<const ServiceModel> models_;
  double now_us_ = 0.0;
};

/// Shared FCFS replay loop.  `resolve` fills the canonical device indices
/// of a ball's copies (false = this request cannot be resolved and is
/// dropped -- the live-disk path uses that for replicas outside the entry
/// snapshot).
LoadResult run_simulation(
    const ClusterConfig& config, std::span<const Request> trace,
    std::span<const ServiceModel> models, ReplicaSelector& selector,
    Xoshiro256& rng,
    const std::function<bool(std::uint64_t, std::vector<std::size_t>&)>&
        resolve) {
  if (models.empty()) {
    throw std::invalid_argument("simulate_load: no service model");
  }
  if (models.size() != 1 && models.size() != config.size()) {
    throw std::invalid_argument("simulate_load: models size mismatch");
  }

  std::vector<double> free_at(config.size(), 0.0);
  FreeAtQueueView queues(free_at, models);

  LoadResult result;
  result.devices.resize(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    result.devices[i].uid = config[i].uid;
  }

  // Log-bucketed latency histogram: 2% relative quantile error, O(1) memory
  // in the trace length.
  LogHistogram responses(0.1, 1e9, 1.02);
  // Registry instruments so live runs surface the simulated device behavior
  // next to the storage/placement metrics (docs/metrics.md).
  metrics::Registry& reg = metrics::Registry::global();
  metrics::Counter& requests_total =
      reg.counter("rds_loadsim_requests_total");
  metrics::Counter& dropped_total =
      reg.counter("rds_loadsim_requests_dropped_total");
  metrics::LatencyHistogram& response_ns =
      reg.histogram("rds_loadsim_response_latency_ns");
  metrics::LatencyHistogram& queue_wait_ns =
      reg.histogram("rds_loadsim_queue_wait_ns");
  metrics::Gauge& inflight = reg.gauge("rds_loadsim_inflight");
  metrics::Gauge& queue_depth_peak =
      reg.gauge("rds_loadsim_queue_depth_peak");

  std::vector<std::size_t> replicas;
  double last_arrival = 0.0;
  for (const Request& r : trace) {
    if (r.arrival_us < last_arrival) {
      throw std::invalid_argument("simulate_load: trace not sorted");
    }
    last_arrival = r.arrival_us;
    // One logical request in flight from resolve through service
    // accounting; the guard keeps the gauge balanced on every exit path.
    const metrics::GaugeGuard in_flight_guard(inflight);
    if (!resolve(r.ball, replicas)) {
      dropped_total.inc();
      continue;
    }

    queues.set_now(r.arrival_us);
    const std::size_t chosen = selector.select(replicas, queues, rng);
    const std::size_t dev = replicas[chosen];
    const ServiceModel& model = models.size() == 1 ? models[0] : models[dev];

    const double service_us = model.sample_us(rng);
    const double start = std::max(r.arrival_us, free_at[dev]);
    const double finish = start + service_us;
    free_at[dev] = finish;

    result.devices[dev].requests += 1;
    result.devices[dev].busy_us += service_us;
    responses.add(finish - r.arrival_us);
    result.makespan_us = std::max(result.makespan_us, finish);

    requests_total.inc();
    response_ns.record(
        static_cast<std::uint64_t>((finish - r.arrival_us) * 1000.0));
    const double wait_us = start - r.arrival_us;
    queue_wait_ns.record(static_cast<std::uint64_t>(wait_us * 1000.0));
    // FCFS backlog expressed in requests: how many mean service times fit
    // into the wait this arrival experienced.
    queue_depth_peak.set_max(
        static_cast<std::int64_t>(std::ceil(wait_us / model.mean_us())));
  }

  if (responses.count() > 0) {
    result.mean_response_us = responses.mean();
    result.p50_response_us = responses.quantile(0.50);
    result.p99_response_us = responses.quantile(0.99);
    result.p999_response_us = responses.quantile(0.999);
    result.max_response_us = responses.max();
  }
  if (result.makespan_us > 0.0) {
    for (DeviceLoad& d : result.devices) {
      d.utilization = d.busy_us / result.makespan_us;
    }
  }
  return result;
}

}  // namespace

LoadResult simulate_load(const ClusterConfig& config, const BlockMap& map,
                         std::span<const Request> trace,
                         std::span<const ServiceModel> models,
                         ReplicaSelector& selector, Xoshiro256& rng) {
  std::unordered_map<DeviceId, std::size_t> index_of;
  for (std::size_t i = 0; i < config.size(); ++i) {
    index_of.emplace(config[i].uid, i);
  }
  const unsigned k = map.replication();
  const auto resolve = [&](std::uint64_t ball,
                           std::vector<std::size_t>& out) {
    const std::span<const DeviceId> copies = map.copies(ball);
    out.resize(k);
    for (unsigned c = 0; c < k; ++c) out[c] = index_of.at(copies[c]);
    return true;
  };
  return run_simulation(config, trace, models, selector, rng, resolve);
}

LoadResult simulate_load(const VirtualDisk& disk,
                         std::span<const Request> trace,
                         std::span<const ServiceModel> models,
                         ReplicaSelector& selector, Xoshiro256& rng) {
  // The device table (and models indexing) is fixed at entry; each request
  // still resolves its copies through one live epoch read, so the run
  // exercises the same wait-free path a real read does.
  const std::shared_ptr<const PlacementEpoch> entry =
      disk.placement_snapshot();
  std::unordered_map<DeviceId, std::size_t> index_of;
  for (std::size_t i = 0; i < entry->config.size(); ++i) {
    index_of.emplace(entry->config[i].uid, i);
  }

  std::vector<DeviceId> copies(entry->strategy->replication());
  const auto resolve = [&](std::uint64_t ball,
                           std::vector<std::size_t>& out) {
    Result<std::uint64_t> placed = disk.try_copy_locations(ball, copies);
    if (!placed.ok()) {
      // A live swap changed the replication degree between requests:
      // re-size to the current epoch and retry once.
      copies.resize(disk.placement_snapshot()->strategy->replication());
      placed = disk.try_copy_locations(ball, copies);
      if (!placed.ok()) return false;
    }
    out.clear();
    out.reserve(copies.size());
    for (const DeviceId uid : copies) {
      const auto it = index_of.find(uid);
      if (it == index_of.end()) return false;  // device unknown at entry
      out.push_back(it->second);
    }
    return true;
  };
  return run_simulation(entry->config, trace, models, selector, rng,
                        resolve);
}

}  // namespace rds
