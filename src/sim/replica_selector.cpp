#include "src/sim/replica_selector.hpp"

#include <algorithm>

namespace rds {

std::size_t RoundRobinSelector::select(std::span<const std::size_t> replicas,
                                       const QueueView& /*queues*/,
                                       Xoshiro256& /*rng*/) {
  return cursor_++ % replicas.size();
}

std::size_t RandomSelector::select(std::span<const std::size_t> replicas,
                                   const QueueView& /*queues*/,
                                   Xoshiro256& rng) {
  return static_cast<std::size_t>(rng.next_below(replicas.size()));
}

std::size_t LeastLoadedSelector::select(std::span<const std::size_t> replicas,
                                        const QueueView& queues,
                                        Xoshiro256& /*rng*/) {
  std::size_t best = 0;
  double best_backlog = queues.backlog_us(replicas[0]);
  for (std::size_t c = 1; c < replicas.size(); ++c) {
    const double backlog = queues.backlog_us(replicas[c]);
    if (backlog < best_backlog) {
      best_backlog = backlog;
      best = c;
    }
  }
  return best;
}

std::size_t PowerOfTwoSelector::select(std::span<const std::size_t> replicas,
                                       const QueueView& queues,
                                       Xoshiro256& rng) {
  const std::size_t k = replicas.size();
  if (k == 1) return 0;
  const std::size_t a = static_cast<std::size_t>(rng.next_below(k));
  // Second probe distinct from the first: draw from the other k-1 slots.
  std::size_t b = static_cast<std::size_t>(rng.next_below(k - 1));
  if (b >= a) ++b;
  return queues.backlog_us(replicas[b]) < queues.backlog_us(replicas[a]) ? b
                                                                         : a;
}

std::size_t WaterFillingSelector::select(std::span<const std::size_t> replicas,
                                         const QueueView& queues,
                                         Xoshiro256& /*rng*/) {
  if (assigned_us_.size() < queues.device_count()) {
    assigned_us_.resize(queues.device_count(), 0.0);
  }
  std::size_t best = 0;
  double best_level = assigned_us_[replicas[0]] +
                      queues.mean_service_us(replicas[0]);
  for (std::size_t c = 1; c < replicas.size(); ++c) {
    const double level =
        assigned_us_[replicas[c]] + queues.mean_service_us(replicas[c]);
    if (level < best_level) {
      best_level = level;
      best = c;
    }
  }
  assigned_us_[replicas[best]] += queues.mean_service_us(replicas[best]);
  return best;
}

// ---------- The selector factory ----------

namespace {

/// Accepted spellings per kind (canonical first).
struct SelectorNames {
  SelectorKind kind;
  std::string_view canonical;
  std::string_view alias;  // empty when the kind has no short form
};

constexpr SelectorKind kAllSelectorKinds[] = {
    SelectorKind::kRoundRobin,  SelectorKind::kRandom,
    SelectorKind::kLeastLoaded, SelectorKind::kPowerOfTwo,
    SelectorKind::kWaterFilling,
};

constexpr SelectorNames kSelectorNames[] = {
    {SelectorKind::kRoundRobin, "round-robin", "rr"},
    {SelectorKind::kRandom, "random", ""},
    {SelectorKind::kLeastLoaded, "least-loaded", "ll"},
    {SelectorKind::kPowerOfTwo, "power-of-two", "p2c"},
    {SelectorKind::kWaterFilling, "water-filling", "wf"},
};

}  // namespace

std::span<const SelectorKind> all_selector_kinds() noexcept {
  return kAllSelectorKinds;
}

std::string replica_selector_names() {
  std::string out;
  for (const SelectorNames& entry : kSelectorNames) {
    if (!out.empty()) out += ", ";
    out += entry.canonical;
    if (!entry.alias.empty()) {
      out += " (";
      out += entry.alias;
      out += ")";
    }
  }
  return out;
}

std::string_view to_string(SelectorKind kind) noexcept {
  for (const SelectorNames& entry : kSelectorNames) {
    if (entry.kind == kind) return entry.canonical;
  }
  return "?";
}

std::unique_ptr<ReplicaSelector> make_replica_selector(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kRoundRobin:
      return std::make_unique<RoundRobinSelector>();
    case SelectorKind::kRandom:
      return std::make_unique<RandomSelector>();
    case SelectorKind::kLeastLoaded:
      return std::make_unique<LeastLoadedSelector>();
    case SelectorKind::kPowerOfTwo:
      return std::make_unique<PowerOfTwoSelector>();
    case SelectorKind::kWaterFilling:
      return std::make_unique<WaterFillingSelector>();
  }
  return std::make_unique<RandomSelector>();  // unreachable
}

Result<std::unique_ptr<ReplicaSelector>> try_make_replica_selector(
    std::string_view name) {
  for (const SelectorNames& entry : kSelectorNames) {
    if (name == entry.canonical ||
        (!entry.alias.empty() && name == entry.alias)) {
      return {make_replica_selector(entry.kind)};
    }
  }
  return {ErrorCode::kInvalidArgument,
          "make_replica_selector: unknown policy '" + std::string(name) +
              "'; valid: " + replica_selector_names()};
}

std::unique_ptr<ReplicaSelector> make_replica_selector(
    std::string_view name) {
  return try_make_replica_selector(name).value_or_throw();
}

}  // namespace rds
