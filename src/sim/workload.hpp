// Ball-address and request workload generators.
//
// Every request-level simulation draws from one WorkloadGenerator: a
// (possibly time-varying) popularity distribution over `universe` balls
// plus an arrival-rate modulation.  Generators are constructed through
// make_workload()/try_make_workload() from a spec string ("zipf:0.9",
// "flash-crowd:0.9,0.5", ...) exactly like placement strategies go through
// make_replication_strategy() -- adding a generator means one enum value
// and one case in the factory, and every consumer (CLI, benches, tests)
// picks it up, with unknown names rejected by an error that enumerates
// every accepted spelling.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/result.hpp"
#include "src/util/random.hpp"

namespace rds {

/// A request workload: which ball a request arriving at `now_us` asks for,
/// and how the arrival rate is modulated over time.  Implementations are
/// immutable and cheap to share; all sampling state lives in the caller's
/// RNG, so one generator can feed any number of independent traces.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Ball index in [0, universe()) for a request arriving at `now_us`.
  [[nodiscard]] virtual std::uint64_t sample(Xoshiro256& rng,
                                             double now_us) const = 0;

  /// Arrival-rate multiplier at `now_us` (1.0 = the trace's base rate).
  /// Time-varying workloads (diurnal, flash crowds) modulate here; the
  /// trace builder thins a Poisson process against it.
  [[nodiscard]] virtual double rate_factor(double /*now_us*/) const noexcept {
    return 1.0;
  }

  /// Upper bound of rate_factor() over all times (the thinning majorant).
  [[nodiscard]] virtual double max_rate_factor() const noexcept { return 1.0; }

  [[nodiscard]] virtual std::uint64_t universe() const noexcept = 0;

  /// Canonical spec-string kind (for reports and error messages).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Addresses base, base+1, ..., base+m-1 (virtual block numbers of a volume;
/// the hash layer decorrelates them, so sequential addresses are the normal
/// case, as in the paper's simulations).
[[nodiscard]] std::vector<std::uint64_t> sequential_addresses(
    std::uint64_t count, std::uint64_t base = 0);

/// `count` distinct pseudo-random 64-bit addresses.
[[nodiscard]] std::vector<std::uint64_t> random_addresses(std::uint64_t count,
                                                          Xoshiro256& rng);

/// Uniform requests over `universe` balls -- the no-skew baseline.
class UniformGenerator final : public WorkloadGenerator {
 public:
  explicit UniformGenerator(std::uint64_t universe);

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng,
                                     double now_us) const override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "uniform";
  }

 private:
  std::uint64_t n_;
};

/// Zipf-distributed request sampler over `universe` items with skew `s`
/// (s = 0 is uniform; s ~ 0.99 models hot-spot storage traffic).  Uses the
/// rejection-inversion method of Hörmann & Derflinger -- O(1) per sample,
/// no O(universe) table.  The three normalization constants are computed
/// once at construction and cached for the generator's lifetime.
class ZipfGenerator final : public WorkloadGenerator {
 public:
  /// Validating constructor form: kInvalidArgument for universe == 0 or a
  /// skew that is negative or not finite.  The factory path goes through
  /// here so a bad spec comes back as a Result instead of an exception.
  [[nodiscard]] static Result<ZipfGenerator> try_make(std::uint64_t universe,
                                                      double skew);

  /// Throwing wrapper over try_make (std::invalid_argument).
  ZipfGenerator(std::uint64_t universe, double skew);

  /// Item index in [0, universe), item 0 hottest.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng,
                                     double /*now_us*/) const override {
    return sample(rng);
  }

  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return n_;
  }
  [[nodiscard]] double skew() const noexcept { return s_; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "zipf";
  }

 private:
  struct Validated {};  // tag: parameters already checked by try_make
  ZipfGenerator(Validated, std::uint64_t universe, double skew) noexcept;

  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  // Cached normalization constants (rejection-inversion sampling bounds).
  double h_integral_x1_ = 0.0;
  double h_integral_num_elements_ = 0.0;
  double h_x1_ = 0.0;
};

/// Zipf base traffic with periodic flash crowds: during the first
/// `duty` fraction of every `period_us` window, `crowd_fraction` of the
/// requests all hit ONE ball (a different one each window -- yesterday's
/// viral object is not today's), and the arrival rate surges by `surge`.
/// Outside the crowd the workload is plain Zipf(skew).
class FlashCrowdGenerator final : public WorkloadGenerator {
 public:
  FlashCrowdGenerator(std::uint64_t universe, double skew,
                      double crowd_fraction = 0.5, double period_us = 2e6,
                      double duty = 0.25, double surge = 2.0);

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng,
                                     double now_us) const override;
  [[nodiscard]] double rate_factor(double now_us) const noexcept override;
  [[nodiscard]] double max_rate_factor() const noexcept override {
    return surge_;
  }
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return base_.universe();
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "flash-crowd";
  }

  /// The crowd object of the window containing `now_us` (deterministic, so
  /// tests can predict it).
  [[nodiscard]] std::uint64_t crowd_ball(double now_us) const noexcept;
  [[nodiscard]] bool in_crowd(double now_us) const noexcept;

 private:
  ZipfGenerator base_;
  double crowd_fraction_;
  double period_us_;
  double duty_;
  double surge_;
};

/// Zipf popularity under a sinusoidal day curve: the arrival rate swings
/// between (1 - amplitude) and (1 + amplitude) of the base rate with period
/// `period_us`.  What is hot does not change -- only how hard it is hit.
class DiurnalGenerator final : public WorkloadGenerator {
 public:
  DiurnalGenerator(std::uint64_t universe, double skew,
                   double amplitude = 0.8, double period_us = 10e6);

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng,
                                     double now_us) const override;
  [[nodiscard]] double rate_factor(double now_us) const noexcept override;
  [[nodiscard]] double max_rate_factor() const noexcept override {
    return 1.0 + amplitude_;
  }
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return base_.universe();
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "diurnal";
  }

 private:
  ZipfGenerator base_;
  double amplitude_;
  double period_us_;
};

/// Zipf popularity whose hot SET moves: every `period_us` the identity
/// mapping rank -> ball rotates to a fresh (deterministic) offset, so a
/// selector or cache tuned to the last epoch's hot balls is wrong in the
/// next one.  Within one epoch the distribution is exactly Zipf(skew) over
/// the rotated universe.
class HotspotShiftGenerator final : public WorkloadGenerator {
 public:
  HotspotShiftGenerator(std::uint64_t universe, double skew,
                        double period_us = 1e6);

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng,
                                     double now_us) const override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return base_.universe();
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "hotspot-shift";
  }

  /// The rotation offset in effect at `now_us` (deterministic, for tests).
  [[nodiscard]] std::uint64_t offset_at(double now_us) const noexcept;

 private:
  ZipfGenerator base_;
  double period_us_;
};

// ---------- The workload factory ----------

/// Which workload generator backs a simulation / CLI run.
enum class WorkloadKind {
  kUniform,       ///< uniform over the universe
  kZipf,          ///< zipf:SKEW
  kFlashCrowd,    ///< flash-crowd:SKEW[,FRAC[,PERIOD_US]]
  kDiurnal,       ///< diurnal:SKEW[,AMPLITUDE[,PERIOD_US]]
  kHotspotShift,  ///< hotspot-shift:SKEW[,PERIOD_US]
};

/// Every kind, in declaration order -- the one list consumers (tests, CLI
/// usage text, error messages) iterate so a new kind cannot be forgotten.
[[nodiscard]] std::span<const WorkloadKind> all_workload_kinds() noexcept;

/// Comma-separated list of every accepted spelling with its parameter
/// shape, canonical names first, for usage text and unknown-name errors.
[[nodiscard]] std::string workload_kind_names();

/// Canonical spelling of `kind` (the spec-string prefix).
[[nodiscard]] std::string_view to_string(WorkloadKind kind) noexcept;

/// Builds a generator over `universe` balls from a spec string
/// `kind[:param[,param...]]` -- e.g. "uniform", "zipf:0.9",
/// "flash-crowd:0.9,0.5", "diurnal:0.9,0.8", "hotspot-shift:0.9".
/// Omitted parameters take the defaults documented in
/// docs/load_balancing.md.  kInvalidArgument for an unknown kind (the
/// message enumerates every accepted spelling, like the strategy factory),
/// malformed or out-of-range parameters, or universe == 0.
[[nodiscard]] Result<std::unique_ptr<WorkloadGenerator>> try_make_workload(
    std::string_view spec, std::uint64_t universe);

/// Throwing wrapper over try_make_workload (std::invalid_argument).
[[nodiscard]] std::unique_ptr<WorkloadGenerator> make_workload(
    std::string_view spec, std::uint64_t universe);

}  // namespace rds
