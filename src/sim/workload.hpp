// Ball-address and request workload generators.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/random.hpp"

namespace rds {

/// Addresses base, base+1, ..., base+m-1 (virtual block numbers of a volume;
/// the hash layer decorrelates them, so sequential addresses are the normal
/// case, as in the paper's simulations).
[[nodiscard]] std::vector<std::uint64_t> sequential_addresses(
    std::uint64_t count, std::uint64_t base = 0);

/// `count` distinct pseudo-random 64-bit addresses.
[[nodiscard]] std::vector<std::uint64_t> random_addresses(std::uint64_t count,
                                                          Xoshiro256& rng);

/// Zipf-distributed request sampler over `universe` items with skew `s`
/// (s = 0 is uniform; s ~ 0.99 models hot-spot storage traffic).  Uses the
/// rejection-inversion method of Hörmann & Derflinger -- O(1) per sample,
/// no O(universe) table.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t universe, double skew);

  /// Item index in [0, universe), item 0 hottest.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t universe() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return s_; }

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double h_x1_;
};

}  // namespace rds
