// Scripted operation traces against a VirtualDisk.
//
// A tiny line-oriented language for reproducible storage scenarios -- used
// by the CLI's `simulate` command and by tests to express chaos sequences
// declaratively:
//
//     # grow, crash, recover
//     write 0 1000 256
//     add 9 50000 new-disk
//     fail 2
//     read 0 1000
//     rebuild
//     scrub
//
// Commands:
//   write <first> <count> [size]   store blocks with deterministic payloads
//   read <first> <count>           read and VERIFY against those payloads
//   trim <first> <count>           discard blocks
//   add <uid> <capacity> [name]    add a device (migrates)
//   remove <uid>                   gracefully drain + remove a device
//   resize is intentionally absent: express it as remove + add
//   fail <uid>                     crash a device
//   corrupt <block> <fragment>     flip bits in one stored fragment
//   rebuild                        drop failed devices, restore redundancy
//   repair                         fix missing/corrupt fragments in place
//   scrub                          assert the pool is fully healthy
//   scrub-dirty                    assert the pool is NOT fully healthy
//
// Blank lines and '#' comments are skipped.  Any failure (parse error,
// verification mismatch, unexpected scrub state) throws std::runtime_error
// with the line number.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/storage/virtual_disk.hpp"

namespace rds {

struct TraceStats {
  std::uint64_t commands = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t blocks_verified = 0;
  std::uint64_t blocks_trimmed = 0;
  std::uint64_t topology_changes = 0;
  std::uint64_t fragments_rebuilt = 0;
  std::uint64_t fragments_repaired = 0;
};

class TraceRunner {
 public:
  explicit TraceRunner(VirtualDisk disk) : disk_(std::move(disk)) {}

  /// Executes the script; throws std::runtime_error("line N: ...") on any
  /// parse error or failed expectation.
  TraceStats run(std::istream& script);

  /// The payload `write`/`read` use for a block: reproducible from the
  /// block id alone.
  [[nodiscard]] static Bytes deterministic_payload(std::uint64_t block,
                                                   std::size_t size);

  [[nodiscard]] VirtualDisk& disk() noexcept { return disk_; }

 private:
  VirtualDisk disk_;
};

}  // namespace rds
