#include "src/sim/block_map.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace rds {

BlockMap::BlockMap(const ReplicationStrategy& strategy,
                   std::uint64_t ball_count, std::uint64_t base_address)
    : balls_(ball_count), k_(strategy.replication()) {
  entries_.resize(balls_ * k_);
  addresses_.resize(balls_);
  for (std::uint64_t b = 0; b < balls_; ++b) {
    addresses_[b] = base_address + b;
    strategy.place(addresses_[b], {entries_.data() + b * k_, k_});
  }
}

BlockMap::BlockMap(const ReplicationStrategy& strategy,
                   std::span<const std::uint64_t> addresses)
    : balls_(addresses.size()), k_(strategy.replication()) {
  entries_.resize(balls_ * k_);
  addresses_.assign(addresses.begin(), addresses.end());
  for (std::uint64_t b = 0; b < balls_; ++b) {
    strategy.place(addresses_[b], {entries_.data() + b * k_, k_});
  }
}

BlockMap BlockMap::build_parallel(const ReplicationStrategy& strategy,
                                  std::uint64_t ball_count, unsigned threads,
                                  std::uint64_t base_address) {
  if (threads == 0) {
    throw std::invalid_argument("BlockMap::build_parallel: zero threads");
  }
  BlockMap map;
  map.balls_ = ball_count;
  map.k_ = strategy.replication();
  map.entries_.resize(ball_count * map.k_);
  map.addresses_.resize(ball_count);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::uint64_t chunk = (ball_count + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint64_t begin = t * chunk;
    const std::uint64_t end = std::min(ball_count, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&map, &strategy, base_address, begin, end] {
      const unsigned k = map.k_;
      for (std::uint64_t b = begin; b < end; ++b) {
        map.addresses_[b] = base_address + b;
        strategy.place(map.addresses_[b], {map.entries_.data() + b * k, k});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return map;
}

std::unordered_map<DeviceId, std::uint64_t> BlockMap::device_counts() const {
  std::unordered_map<DeviceId, std::uint64_t> counts;
  for (const DeviceId uid : entries_) ++counts[uid];
  return counts;
}

std::uint64_t BlockMap::count_on(DeviceId uid) const {
  return static_cast<std::uint64_t>(std::ranges::count(entries_, uid));
}

bool BlockMap::redundancy_holds() const {
  std::vector<DeviceId> group;
  for (std::uint64_t b = 0; b < balls_; ++b) {
    const auto c = copies(b);
    group.assign(c.begin(), c.end());
    std::ranges::sort(group);
    if (std::ranges::adjacent_find(group) != group.end()) return false;
  }
  return true;
}

}  // namespace rds
