// Fairness reporting: per-device fill levels and deviation from the fair
// share, in the format of the paper's Figure 2/4 plots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/cluster/cluster_config.hpp"
#include "src/sim/block_map.hpp"

namespace rds {

class VirtualDisk;

struct DeviceUsage {
  DeviceId uid = kNoDevice;
  std::uint64_t capacity = 0;
  double usable_capacity = 0.0;  ///< adjusted capacity b'_i (== capacity
                                 ///< when the system is capacity efficient)
  std::uint64_t copies = 0;      ///< copies stored
  double fill_percent = 0.0;     ///< copies / capacity * 100 (Figure 2 y-axis)
  double fair_copies = 0.0;      ///< k * b'_i / sum b' * balls
  double deviation = 0.0;        ///< (copies - fair) / fair
};

struct FairnessReport {
  std::vector<DeviceUsage> devices;  // canonical order
  double max_abs_deviation = 0.0;
  double rms_deviation = 0.0;

  /// Aligned text table (one row per device).
  void print(std::ostream& os, const std::string& title) const;
};

/// Builds the report for a materialized placement.  `adjusted` are the
/// usable capacities b'_i in canonical order (pass the raw capacities if no
/// adjustment applies); fairness targets are proportional to them.
[[nodiscard]] FairnessReport fairness_report(const ClusterConfig& config,
                                             std::span<const double> adjusted,
                                             const BlockMap& map);

/// Live-disk form: one placement_snapshot() pins an epoch-consistent
/// (strategy, config) pair, the placement of balls 0..ball_count-1 is
/// materialized from it, and the usable capacities come from the same
/// strategy -- so the report is self-consistent even while a topology
/// change commits concurrently.  Replaces the old pattern of per-copy
/// place() loops against a disk whose strategy might swap mid-loop.
[[nodiscard]] FairnessReport fairness_report(const VirtualDisk& disk,
                                             std::uint64_t ball_count);

/// The usable capacities b'_i of `strategy` over `config`, canonical order.
/// Strategies that adjust device weights (Redundant Share's b-tilde,
/// Algorithm 1) report the adjusted values; everything else falls back to
/// the raw capacities -- exactly what fairness_report() expects as its
/// `adjusted` argument for that strategy.
[[nodiscard]] std::vector<double> usable_capacities(
    const ReplicationStrategy& strategy, const ClusterConfig& config);

}  // namespace rds
