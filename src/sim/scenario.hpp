// The paper's experiment scenarios (Sections 3.1, 3.2).
//
// Figure 2/4 scenario: start with 8 heterogeneous bins of 500,000 ..
// 1,200,000 blocks (step 100,000); twice add two bins continuing the ladder
// (1.3M/1.4M, then 1.5M/1.6M); then twice remove the two smallest bins.
// After each of the five phases, measure the fill level of every bin.
//
// Figure 3 scenario: for heterogeneous and homogeneous bin sets, add or
// remove a bin at the top ("big") or bottom ("small") of the capacity order
// and count replaced blocks vs blocks on the affected bin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster_config.hpp"

namespace rds {

/// The 8-bin heterogeneous ladder of Figure 2: 500k, 600k, ..., 1.2M.
[[nodiscard]] ClusterConfig paper_heterogeneous_base();

/// n homogeneous bins of `capacity` blocks each (uids 0..n-1).
[[nodiscard]] ClusterConfig homogeneous_cluster(std::size_t n,
                                                std::uint64_t capacity);

/// One phase of the Figure 2/4 evolution.
struct ScenarioPhase {
  std::string label;      ///< e.g. "8 disks", "10 disks"
  ClusterConfig config;
};

/// The full five-phase evolution of Figure 2/4:
/// 8 -> 10 -> 12 -> 10 -> 8 disks.
[[nodiscard]] std::vector<ScenarioPhase> paper_figure2_phases();

/// Kinds of single-device edits used by the adaptivity experiments.
enum class EditKind {
  kAddBiggest,     ///< insert a device larger than all existing ones
  kAddSmallest,    ///< insert a device smaller than all existing ones
  kRemoveBiggest,  ///< remove the largest device
  kRemoveSmallest, ///< remove the smallest device
};

[[nodiscard]] std::string to_string(EditKind kind);

/// Applies an edit to a copy of `config` and returns the new configuration
/// together with the uid of the affected device.  Added devices get
/// `new_uid`; for kAddBiggest the capacity is one ladder step above the
/// current maximum (or equal for homogeneous_step == 0), for kAddSmallest
/// one step below the minimum (floored at 1).
struct EditResult {
  ClusterConfig config;
  DeviceId affected;
};
[[nodiscard]] EditResult apply_edit(const ClusterConfig& config, EditKind kind,
                                    DeviceId new_uid,
                                    std::uint64_t ladder_step);

}  // namespace rds
