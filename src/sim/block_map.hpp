// BlockMap: the materialized assignment of m balls (x k copies) to devices.
//
// The paper's experiments all reduce to questions about this table: how many
// copies does each bin hold (fairness), and how many entries change between
// two configurations (adaptivity).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/cluster/device.hpp"
#include "src/placement/strategy.hpp"

namespace rds {

class BlockMap {
 public:
  BlockMap() = default;

  /// Materializes the placement of balls 0..m-1 (addresses `base`..`base+m-1`)
  /// under `strategy`.
  BlockMap(const ReplicationStrategy& strategy, std::uint64_t ball_count,
           std::uint64_t base_address = 0);

  /// Materializes the placement of an explicit address list.
  BlockMap(const ReplicationStrategy& strategy,
           std::span<const std::uint64_t> addresses);

  /// Parallel materialization: strategies are immutable, so placements of
  /// disjoint address ranges can be computed on `threads` threads.  Result
  /// is identical to the sequential constructor.
  [[nodiscard]] static BlockMap build_parallel(
      const ReplicationStrategy& strategy, std::uint64_t ball_count,
      unsigned threads, std::uint64_t base_address = 0);

  [[nodiscard]] std::uint64_t ball_count() const noexcept { return balls_; }
  [[nodiscard]] unsigned replication() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t total_copies() const noexcept {
    return balls_ * k_;
  }

  /// Devices of ball i's copies, copy index order.
  [[nodiscard]] std::span<const DeviceId> copies(std::uint64_t ball) const {
    return {entries_.data() + ball * k_, k_};
  }

  /// Address of ball i.
  [[nodiscard]] std::uint64_t address(std::uint64_t ball) const {
    return addresses_[ball];
  }

  /// Number of copies stored per device.
  [[nodiscard]] std::unordered_map<DeviceId, std::uint64_t> device_counts()
      const;

  /// Copies stored on one device.
  [[nodiscard]] std::uint64_t count_on(DeviceId uid) const;

  /// True iff every ball's copies are pairwise distinct (the redundancy
  /// invariant).
  [[nodiscard]] bool redundancy_holds() const;

 private:
  std::vector<DeviceId> entries_;  // balls_ * k_ entries, row-major
  std::vector<std::uint64_t> addresses_;
  std::uint64_t balls_ = 0;
  unsigned k_ = 0;
};

}  // namespace rds
