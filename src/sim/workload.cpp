#include "src/sim/workload.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace rds {
namespace {

/// expm1(t)/t, continuous at 0.
double helper2(double t) {
  return std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0 + t * t / 6.0;
}

/// log1p(t)/t, continuous at 0.
double helper1(double t) {
  return std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0 + t * t / 3.0;
}

/// The epoch index of `now_us` under `period_us` (times before 0 clamp to
/// epoch 0, so callers never see a negative window).
std::uint64_t epoch_of(double now_us, double period_us) noexcept {
  if (!(now_us > 0.0)) return 0;
  return static_cast<std::uint64_t>(now_us / period_us);
}

}  // namespace

std::vector<std::uint64_t> sequential_addresses(std::uint64_t count,
                                                std::uint64_t base) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(base + i);
  return out;
}

std::vector<std::uint64_t> random_addresses(std::uint64_t count,
                                            Xoshiro256& rng) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::uint64_t a = rng();
    if (seen.insert(a).second) out.push_back(a);
  }
  return out;
}

UniformGenerator::UniformGenerator(std::uint64_t universe) : n_(universe) {
  if (universe == 0) {
    throw std::invalid_argument("UniformGenerator: universe=0");
  }
}

std::uint64_t UniformGenerator::sample(Xoshiro256& rng,
                                       double /*now_us*/) const {
  return rng.next_below(n_);
}

// Rejection-inversion sampling (Hörmann & Derflinger 1996), following the
// Apache Commons RNG formulation.  H is an antiderivative of the smooth
// majorizer h(x) = x^-s of the Zipf pmf.
Result<ZipfGenerator> ZipfGenerator::try_make(std::uint64_t universe,
                                              double skew) {
  if (universe == 0) {
    return {ErrorCode::kInvalidArgument, "ZipfGenerator: universe=0"};
  }
  if (std::isnan(skew) || std::isinf(skew)) {
    return {ErrorCode::kInvalidArgument, "ZipfGenerator: skew is not finite"};
  }
  if (skew < 0.0) {
    return {ErrorCode::kInvalidArgument, "ZipfGenerator: negative skew"};
  }
  return ZipfGenerator(Validated{}, universe, skew);
}

ZipfGenerator::ZipfGenerator(std::uint64_t universe, double skew)
    : ZipfGenerator(try_make(universe, skew).value_or_throw()) {}

ZipfGenerator::ZipfGenerator(Validated, std::uint64_t universe,
                             double skew) noexcept
    : n_(universe), s_(skew) {
  // The s == 0 (uniform) path samples with next_below and never consults
  // the rejection-inversion constants -- skip computing them.
  if (s_ == 0.0) return;
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_elements_ = h_integral(static_cast<double>(n_) + 0.5);
  h_x1_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfGenerator::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfGenerator::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfGenerator::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // guard against numerical round-off
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfGenerator::sample(Xoshiro256& rng) const {
  if (s_ == 0.0) return rng.next_below(n_);
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.next_unit() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > static_cast<double>(n_)) kd = static_cast<double>(n_);
    if (kd - x <= h_x1_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<std::uint64_t>(kd) - 1;  // 0-based, item 0 hottest
    }
  }
}

FlashCrowdGenerator::FlashCrowdGenerator(std::uint64_t universe, double skew,
                                         double crowd_fraction,
                                         double period_us, double duty,
                                         double surge)
    : base_(universe, skew),
      crowd_fraction_(crowd_fraction),
      period_us_(period_us),
      duty_(duty),
      surge_(surge) {
  if (!(crowd_fraction >= 0.0 && crowd_fraction <= 1.0)) {
    throw std::invalid_argument(
        "FlashCrowdGenerator: crowd fraction must be in [0, 1]");
  }
  if (!(period_us > 0.0) || std::isinf(period_us)) {
    throw std::invalid_argument(
        "FlashCrowdGenerator: period must be positive and finite");
  }
  if (!(duty > 0.0 && duty <= 1.0)) {
    throw std::invalid_argument(
        "FlashCrowdGenerator: duty must be in (0, 1]");
  }
  if (!(surge >= 1.0) || std::isinf(surge)) {
    throw std::invalid_argument(
        "FlashCrowdGenerator: surge must be >= 1 and finite");
  }
}

bool FlashCrowdGenerator::in_crowd(double now_us) const noexcept {
  const double offset =
      now_us - std::floor(now_us / period_us_) * period_us_;
  return offset >= 0.0 && offset < duty_ * period_us_;
}

std::uint64_t FlashCrowdGenerator::crowd_ball(double now_us) const noexcept {
  // A fresh deterministic object per window: hash the window index so
  // consecutive crowds land on unrelated balls.
  const std::uint64_t window = epoch_of(now_us, period_us_);
  return mix64(window + 1) % base_.universe();
}

std::uint64_t FlashCrowdGenerator::sample(Xoshiro256& rng,
                                          double now_us) const {
  if (in_crowd(now_us) && rng.next_unit() < crowd_fraction_) {
    return crowd_ball(now_us);
  }
  return base_.sample(rng);
}

double FlashCrowdGenerator::rate_factor(double now_us) const noexcept {
  return in_crowd(now_us) ? surge_ : 1.0;
}

DiurnalGenerator::DiurnalGenerator(std::uint64_t universe, double skew,
                                   double amplitude, double period_us)
    : base_(universe, skew), amplitude_(amplitude), period_us_(period_us) {
  if (!(amplitude >= 0.0 && amplitude < 1.0)) {
    throw std::invalid_argument(
        "DiurnalGenerator: amplitude must be in [0, 1)");
  }
  if (!(period_us > 0.0) || std::isinf(period_us)) {
    throw std::invalid_argument(
        "DiurnalGenerator: period must be positive and finite");
  }
}

std::uint64_t DiurnalGenerator::sample(Xoshiro256& rng,
                                       double /*now_us*/) const {
  return base_.sample(rng);
}

double DiurnalGenerator::rate_factor(double now_us) const noexcept {
  constexpr double kTwoPi = 6.283185307179586;
  return 1.0 + amplitude_ * std::sin(kTwoPi * now_us / period_us_);
}

HotspotShiftGenerator::HotspotShiftGenerator(std::uint64_t universe,
                                             double skew, double period_us)
    : base_(universe, skew), period_us_(period_us) {
  if (!(period_us > 0.0) || std::isinf(period_us)) {
    throw std::invalid_argument(
        "HotspotShiftGenerator: period must be positive and finite");
  }
}

std::uint64_t HotspotShiftGenerator::offset_at(double now_us) const noexcept {
  return mix64(epoch_of(now_us, period_us_)) % base_.universe();
}

std::uint64_t HotspotShiftGenerator::sample(Xoshiro256& rng,
                                            double now_us) const {
  // Zipf rank, rotated by the epoch's offset: the shape of the popularity
  // curve is unchanged, its support moves wholesale.
  const std::uint64_t rank = base_.sample(rng);
  const std::uint64_t n = base_.universe();
  return (rank + offset_at(now_us)) % n;
}

// ---------- The workload factory ----------

namespace {

/// Accepted spellings per kind: canonical name first, then the alias, plus
/// the parameter shape shown in usage text and unknown-name errors.
struct WorkloadNames {
  WorkloadKind kind;
  std::string_view canonical;
  std::string_view alias;  // empty when the kind has no short form
  std::string_view params;
  std::size_t max_params;
};

constexpr WorkloadKind kAllWorkloadKinds[] = {
    WorkloadKind::kUniform,      WorkloadKind::kZipf,
    WorkloadKind::kFlashCrowd,   WorkloadKind::kDiurnal,
    WorkloadKind::kHotspotShift,
};

constexpr WorkloadNames kWorkloadNames[] = {
    {WorkloadKind::kUniform, "uniform", "", "", 0},
    {WorkloadKind::kZipf, "zipf", "", ":SKEW", 1},
    {WorkloadKind::kFlashCrowd, "flash-crowd", "flash",
     ":SKEW[,FRAC[,PERIOD_US]]", 3},
    {WorkloadKind::kDiurnal, "diurnal", "", ":SKEW[,AMPLITUDE[,PERIOD_US]]",
     3},
    {WorkloadKind::kHotspotShift, "hotspot-shift", "hotspot",
     ":SKEW[,PERIOD_US]", 2},
};

/// Strict double parser: the whole token must parse and be finite.
bool parse_param(std::string_view token, double& out) noexcept {
  const char* const first = token.data();
  const char* const last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last && !token.empty() &&
         !std::isnan(out) && !std::isinf(out);
}

}  // namespace

std::span<const WorkloadKind> all_workload_kinds() noexcept {
  return kAllWorkloadKinds;
}

std::string workload_kind_names() {
  std::string out;
  for (const WorkloadNames& entry : kWorkloadNames) {
    if (!out.empty()) out += ", ";
    out += entry.canonical;
    out += entry.params;
    if (!entry.alias.empty()) {
      out += " (";
      out += entry.alias;
      out += ")";
    }
  }
  return out;
}

std::string_view to_string(WorkloadKind kind) noexcept {
  for (const WorkloadNames& entry : kWorkloadNames) {
    if (entry.kind == kind) return entry.canonical;
  }
  return "?";
}

Result<std::unique_ptr<WorkloadGenerator>> try_make_workload(
    std::string_view spec, std::uint64_t universe) {
  if (universe == 0) {
    return {ErrorCode::kInvalidArgument, "make_workload: universe=0"};
  }
  const std::size_t colon = spec.find(':');
  const std::string_view kind_name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);

  const WorkloadNames* entry = nullptr;
  for (const WorkloadNames& candidate : kWorkloadNames) {
    if (kind_name == candidate.canonical ||
        (!candidate.alias.empty() && kind_name == candidate.alias)) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    return {ErrorCode::kInvalidArgument,
            "make_workload: unknown workload '" + std::string(kind_name) +
                "'; valid: " + workload_kind_names()};
  }

  // Split the parameter list; every token must be a finite double.
  std::vector<double> params;
  if (colon != std::string_view::npos) {
    std::string_view rest = spec.substr(colon + 1);
    while (true) {
      const std::size_t comma = rest.find(',');
      const std::string_view token =
          comma == std::string_view::npos ? rest : rest.substr(0, comma);
      double value = 0.0;
      if (!parse_param(token, value)) {
        return {ErrorCode::kInvalidArgument,
                "make_workload: bad parameter '" + std::string(token) +
                    "' in spec '" + std::string(spec) + "'"};
      }
      params.push_back(value);
      if (comma == std::string_view::npos) break;
      rest = rest.substr(comma + 1);
    }
  }
  if (params.size() > entry->max_params) {
    return {ErrorCode::kInvalidArgument,
            "make_workload: " + std::string(entry->canonical) + " takes at "
                "most " + std::to_string(entry->max_params) +
                " parameter(s) (" + std::string(entry->canonical) +
                std::string(entry->params) + ")"};
  }

  const auto param = [&params](std::size_t i, double fallback) {
    return i < params.size() ? params[i] : fallback;
  };
  const double skew = param(0, 0.9);
  // Shared skew validation (every parameterized kind embeds a Zipf base).
  if (entry->kind != WorkloadKind::kUniform) {
    const Result<ZipfGenerator> base = ZipfGenerator::try_make(universe, skew);
    if (!base.ok()) return base.error();
  }

  switch (entry->kind) {
    case WorkloadKind::kUniform:
      return {std::make_unique<UniformGenerator>(universe)};
    case WorkloadKind::kZipf:
      return {std::make_unique<ZipfGenerator>(universe, skew)};
    case WorkloadKind::kFlashCrowd: {
      const double fraction = param(1, 0.5);
      const double period_us = param(2, 2e6);
      if (!(fraction >= 0.0 && fraction <= 1.0)) {
        return {ErrorCode::kInvalidArgument,
                "make_workload: flash-crowd fraction must be in [0, 1]"};
      }
      if (!(period_us > 0.0)) {
        return {ErrorCode::kInvalidArgument,
                "make_workload: flash-crowd period must be positive"};
      }
      return {std::make_unique<FlashCrowdGenerator>(universe, skew, fraction,
                                                    period_us)};
    }
    case WorkloadKind::kDiurnal: {
      const double amplitude = param(1, 0.8);
      const double period_us = param(2, 10e6);
      if (!(amplitude >= 0.0 && amplitude < 1.0)) {
        return {ErrorCode::kInvalidArgument,
                "make_workload: diurnal amplitude must be in [0, 1)"};
      }
      if (!(period_us > 0.0)) {
        return {ErrorCode::kInvalidArgument,
                "make_workload: diurnal period must be positive"};
      }
      return {std::make_unique<DiurnalGenerator>(universe, skew, amplitude,
                                                 period_us)};
    }
    case WorkloadKind::kHotspotShift: {
      const double period_us = param(1, 1e6);
      if (!(period_us > 0.0)) {
        return {ErrorCode::kInvalidArgument,
                "make_workload: hotspot-shift period must be positive"};
      }
      return {std::make_unique<HotspotShiftGenerator>(universe, skew,
                                                      period_us)};
    }
  }
  return {ErrorCode::kInvalidArgument,
          "make_workload: unhandled workload kind"};
}

std::unique_ptr<WorkloadGenerator> make_workload(std::string_view spec,
                                                 std::uint64_t universe) {
  return try_make_workload(spec, universe).value_or_throw();
}

}  // namespace rds
