#include "src/sim/workload.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace rds {
namespace {

/// expm1(t)/t, continuous at 0.
double helper2(double t) {
  return std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0 + t * t / 6.0;
}

/// log1p(t)/t, continuous at 0.
double helper1(double t) {
  return std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0 + t * t / 3.0;
}

}  // namespace

std::vector<std::uint64_t> sequential_addresses(std::uint64_t count,
                                                std::uint64_t base) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(base + i);
  return out;
}

std::vector<std::uint64_t> random_addresses(std::uint64_t count,
                                            Xoshiro256& rng) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count * 2);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::uint64_t a = rng();
    if (seen.insert(a).second) out.push_back(a);
  }
  return out;
}

// Rejection-inversion sampling (Hörmann & Derflinger 1996), following the
// Apache Commons RNG formulation.  H is an antiderivative of the smooth
// majorizer h(x) = x^-s of the Zipf pmf.
ZipfGenerator::ZipfGenerator(std::uint64_t universe, double skew)
    : n_(universe), s_(skew) {
  if (universe == 0) throw std::invalid_argument("ZipfGenerator: universe=0");
  if (skew < 0.0) throw std::invalid_argument("ZipfGenerator: negative skew");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_elements_ = h_integral(static_cast<double>(n_) + 0.5);
  h_x1_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfGenerator::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfGenerator::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfGenerator::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // guard against numerical round-off
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfGenerator::sample(Xoshiro256& rng) const {
  if (s_ == 0.0) return rng.next_below(n_);
  while (true) {
    const double u =
        h_integral_num_elements_ +
        rng.next_unit() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > static_cast<double>(n_)) kd = static_cast<double>(n_);
    if (kd - x <= h_x1_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<std::uint64_t>(kd) - 1;  // 0-based, item 0 hottest
    }
  }
}

}  // namespace rds
