#include "src/sim/movement.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace rds {

MovementReport diff_placements(const BlockMap& before, const BlockMap& after) {
  if (before.ball_count() != after.ball_count() ||
      before.replication() != after.replication()) {
    throw std::invalid_argument("diff_placements: incompatible maps");
  }
  const unsigned k = before.replication();

  MovementReport report;
  report.total_copies = before.total_copies();

  std::vector<DeviceId> a, b;
  for (std::uint64_t ball = 0; ball < before.ball_count(); ++ball) {
    if (before.address(ball) != after.address(ball)) {
      throw std::invalid_argument("diff_placements: address mismatch");
    }
    const auto cb = before.copies(ball);
    const auto ca = after.copies(ball);
    for (unsigned j = 0; j < k; ++j) {
      if (cb[j] != ca[j]) ++report.moved_indexed;
    }
    a.assign(ca.begin(), ca.end());
    b.assign(cb.begin(), cb.end());
    std::ranges::sort(a);
    std::ranges::sort(b);
    // |after \ before| via sorted set difference.
    std::size_t ia = 0, ib = 0;
    while (ia < a.size()) {
      if (ib == b.size() || a[ia] < b[ib]) {
        ++report.moved_set;
        ++ia;
      } else if (b[ib] < a[ia]) {
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
    }
  }

  const auto counts_before = before.device_counts();
  const auto counts_after = after.device_counts();
  for (const auto& [uid, na] : counts_after) {
    const auto it = counts_before.find(uid);
    const std::uint64_t nb = it == counts_before.end() ? 0 : it->second;
    if (na > nb) report.optimal_moves += na - nb;
  }
  return report;
}

double replaced_per_used(const MovementReport& report, const BlockMap& before,
                         const BlockMap& after, DeviceId uid) {
  std::uint64_t used = after.count_on(uid);
  if (used == 0) used = before.count_on(uid);
  if (used == 0) return 0.0;
  return static_cast<double>(report.moved_set) / static_cast<double>(used);
}

}  // namespace rds
