// Data-movement analysis between two materialized placements.
//
// Quantifies the paper's adaptivity experiments (Figures 3 and 5): after a
// configuration change, how many block copies must physically move, compared
// with (a) the number of blocks on the affected device and (b) the
// theoretical minimum any strategy must move to reach the new distribution.
#pragma once

#include <cstdint>

#include "src/sim/block_map.hpp"

namespace rds {

struct MovementReport {
  std::uint64_t total_copies = 0;  ///< balls * k

  /// Copies whose device changed under *set* semantics: for each ball,
  /// |devices(after) \ devices(before)|.  This is the data that must be
  /// copied over the network for mirrored blocks (all replicas identical).
  std::uint64_t moved_set = 0;

  /// Copies whose device changed per copy *index*: sum over copy slots j of
  /// [device(j, after) != device(j, before)].  This is the movement cost
  /// when the k sub-blocks are distinct (erasure coding).
  std::uint64_t moved_indexed = 0;

  /// Minimum number of copies ANY strategy must move to turn the before
  /// per-device distribution into the after one:
  /// sum_d max(0, count_after(d) - count_before(d)).
  std::uint64_t optimal_moves = 0;

  [[nodiscard]] double moved_set_fraction() const {
    return total_copies == 0
               ? 0.0
               : static_cast<double>(moved_set) /
                     static_cast<double>(total_copies);
  }
  /// Competitive ratio under set semantics (paper's "replaced blocks"
  /// divided by the unavoidable movement).
  [[nodiscard]] double competitive_set() const {
    return optimal_moves == 0 ? 0.0
                              : static_cast<double>(moved_set) /
                                    static_cast<double>(optimal_moves);
  }
  [[nodiscard]] double competitive_indexed() const {
    return optimal_moves == 0 ? 0.0
                              : static_cast<double>(moved_indexed) /
                                    static_cast<double>(optimal_moves);
  }
};

/// Compares two placements of the *same* ball population (same count, same
/// addresses, same k).  Throws std::invalid_argument otherwise.
[[nodiscard]] MovementReport diff_placements(const BlockMap& before,
                                             const BlockMap& after);

/// The paper's Figure 3/5 metric: moved copies (set semantics) divided by
/// the number of copies on the affected device (`uid`) in whichever map
/// contains it (after for insertions, before for removals).
[[nodiscard]] double replaced_per_used(const MovementReport& report,
                                       const BlockMap& before,
                                       const BlockMap& after, DeviceId uid);

}  // namespace rds
