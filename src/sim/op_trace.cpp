#include "src/sim/op_trace.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {
namespace {

[[noreturn]] void fail_at(std::size_t line, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + what);
}

std::uint64_t parse_u64(std::istringstream& in, std::size_t line,
                        const char* what) {
  std::uint64_t v = 0;
  if (!(in >> v)) fail_at(line, std::string("expected ") + what);
  return v;
}

}  // namespace

Bytes TraceRunner::deterministic_payload(std::uint64_t block,
                                         std::size_t size) {
  Bytes payload(size);
  std::uint64_t state = mix64(block + 0x7ace0ULL);
  for (std::size_t i = 0; i < size; ++i) {
    if (i % 8 == 0) state = mix64(state);
    payload[i] = static_cast<std::uint8_t>(state >> ((i % 8) * 8));
  }
  return payload;
}

TraceStats TraceRunner::run(std::istream& script) {
  TraceStats stats;
  std::string raw;
  std::size_t line_no = 0;
  std::size_t default_size = 128;
  while (std::getline(script, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream in(raw);
    std::string cmd;
    if (!(in >> cmd)) continue;  // blank / comment line
    ++stats.commands;

    try {
      if (cmd == "write") {
        const std::uint64_t first = parse_u64(in, line_no, "first block");
        const std::uint64_t count = parse_u64(in, line_no, "count");
        std::size_t size = default_size;
        if (std::uint64_t s = 0; in >> s) size = static_cast<std::size_t>(s);
        for (std::uint64_t b = first; b < first + count; ++b) {
          disk_.write(b, deterministic_payload(b, size));
          ++stats.blocks_written;
        }
        default_size = size;
      } else if (cmd == "read") {
        const std::uint64_t first = parse_u64(in, line_no, "first block");
        const std::uint64_t count = parse_u64(in, line_no, "count");
        for (std::uint64_t b = first; b < first + count; ++b) {
          const Bytes content = disk_.read(b);
          if (content != deterministic_payload(b, content.size())) {
            fail_at(line_no,
                    "verification failed for block " + std::to_string(b));
          }
          ++stats.blocks_verified;
        }
      } else if (cmd == "trim") {
        const std::uint64_t first = parse_u64(in, line_no, "first block");
        const std::uint64_t count = parse_u64(in, line_no, "count");
        for (std::uint64_t b = first; b < first + count; ++b) {
          if (disk_.trim(b)) ++stats.blocks_trimmed;
        }
      } else if (cmd == "add") {
        const std::uint64_t uid = parse_u64(in, line_no, "device uid");
        const std::uint64_t capacity = parse_u64(in, line_no, "capacity");
        std::string name;
        in >> name;
        disk_.add_device({uid, capacity, name});
        ++stats.topology_changes;
      } else if (cmd == "remove") {
        disk_.remove_device(parse_u64(in, line_no, "device uid"));
        ++stats.topology_changes;
      } else if (cmd == "fail") {
        disk_.fail_device(parse_u64(in, line_no, "device uid"));
      } else if (cmd == "corrupt") {
        const std::uint64_t block = parse_u64(in, line_no, "block");
        const std::uint64_t fragment = parse_u64(in, line_no, "fragment");
        if (!disk_.corrupt_fragment(block,
                                    static_cast<unsigned>(fragment))) {
          fail_at(line_no, "no such fragment to corrupt");
        }
      } else if (cmd == "rebuild") {
        stats.fragments_rebuilt += disk_.rebuild();
        ++stats.topology_changes;
      } else if (cmd == "repair") {
        stats.fragments_repaired += disk_.repair();
      } else if (cmd == "scrub") {
        if (!disk_.scrub().clean()) fail_at(line_no, "scrub found damage");
      } else if (cmd == "scrub-dirty") {
        if (disk_.scrub().clean()) {
          fail_at(line_no, "expected damage, pool is clean");
        }
      } else {
        fail_at(line_no, "unknown command: " + cmd);
      }
    } catch (const std::runtime_error&) {
      throw;  // already annotated (or a disk error worth surfacing as-is)
    } catch (const std::exception& e) {
      fail_at(line_no, e.what());
    }
  }
  return stats;
}

}  // namespace rds
