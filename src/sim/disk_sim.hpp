// Request-service simulation: FCFS queueing at every device.
//
// The paper's fairness notion covers requests as well as data ("every
// storage device with x% of the available capacity gets x% of the data and
// the requests").  This simulator replays a request trace against a
// materialized placement and measures what that fairness buys: per-device
// utilization and end-to-end response times.  Each device is an FCFS server
// with a fixed per-request overhead plus a transfer time; requests arrive
// open-loop (the arrival process is part of the trace).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/cluster/cluster_config.hpp"
#include "src/sim/block_map.hpp"
#include "src/util/random.hpp"

namespace rds {

/// Service-time model of one device.
struct DiskPerf {
  double seek_us = 100.0;       ///< fixed per-request overhead
  double us_per_block = 10.0;   ///< transfer time per request (one block)

  [[nodiscard]] double service_us() const noexcept {
    return seek_us + us_per_block;
  }
};

/// One read request in the trace.
struct Request {
  double arrival_us = 0.0;
  std::uint64_t ball = 0;
};

/// How a read picks among the k replicas of its ball.
enum class ReplicaPolicy {
  kPrimaryOnly,   ///< always copy 0 (what naive clients do)
  kRoundRobin,    ///< copy (request index mod k)
  kLeastLoaded,   ///< the replica whose device frees up first
};

struct DeviceLoad {
  DeviceId uid = kNoDevice;
  std::uint64_t requests = 0;
  double busy_us = 0.0;
  double utilization = 0.0;  ///< busy / makespan
};

struct SimulationResult {
  double makespan_us = 0.0;
  double mean_response_us = 0.0;
  double p99_response_us = 0.0;
  double max_response_us = 0.0;
  std::vector<DeviceLoad> devices;  ///< canonical order of `config`

  [[nodiscard]] double max_utilization() const;
};

/// Generates `count` Poisson arrivals at `rate_per_us` with Zipf(skew) ball
/// popularity over `map.ball_count()` balls.
[[nodiscard]] std::vector<Request> make_trace(const BlockMap& map,
                                              std::uint64_t count,
                                              double rate_per_us, double skew,
                                              Xoshiro256& rng);

/// Replays `trace` (must be sorted by arrival time) against the placement
/// in `map`.  `perf` maps canonical device index -> service model; pass one
/// entry to use it for every device.
[[nodiscard]] SimulationResult simulate_requests(
    const ClusterConfig& config, const BlockMap& map,
    std::span<const Request> trace, std::span<const DiskPerf> perf,
    ReplicaPolicy policy);

}  // namespace rds
