#include "src/storage/migration_executor.hpp"

#include <algorithm>
#include <optional>
#include <thread>
#include <vector>

#include "src/metrics/registry.hpp"
#include "src/metrics/scoped_timer.hpp"
#include "src/util/gauge_guard.hpp"

namespace rds {

MigrationExecutor::MigrationExecutor(
    std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores,
    std::uint32_t volume_id, MigrationExecutorOptions options)
    : stores_(std::move(stores)), volume_id_(volume_id), opts_(options) {
  for (const auto& [uid, store] : stores_) {
    if (!store) {
      throw std::invalid_argument("MigrationExecutor: null store");
    }
    locks_.try_emplace(uid);
  }
  metrics::Registry& reg = metrics::Registry::global();
  moves_total_ = &reg.counter("rds_migration_executor_moves_total");
  retries_total_ = &reg.counter("rds_migration_executor_retries_total");
  failures_total_ = &reg.counter("rds_migration_executor_failures_total");
  cancellations_total_ =
      &reg.counter("rds_migration_executor_cancellations_total");
  inflight_ = &reg.gauge("rds_migration_executor_inflight");
  move_latency_ns_ = &reg.histogram("rds_migration_move_latency_ns");
}

MigrationExecutor::MoveOutcome MigrationExecutor::run_move(
    const FragmentMove& move, const CancellationToken& token,
    std::uint64_t& retries) {
  const FragmentKey key{move.block, move.fragment, volume_id_};
  DeviceStore& from = *stores_.at(move.from);
  DeviceStore& to = *stores_.at(move.to);

  for (unsigned attempt = 0; attempt < opts_.max_attempts; ++attempt) {
    if (token.cancelled()) return MoveOutcome::kCancelled;

    bool failed = false;
    if (opts_.faults != nullptr && opts_.faults->should_fail(move, attempt)) {
      failed = true;
    } else {
      std::optional<std::vector<std::uint8_t>> payload;
      {
        const MutexLock lock(lock_of(move.from));
        payload = from.read(key);
      }
      if (!payload) {
        // Nothing to move: the fragment was trimmed, never existed, or the
        // source crashed.  Rebuild-from-peers is the layer above's job
        // (VirtualDisk::rebuild); a pure mover reports and continues.
        return MoveOutcome::kSkipped;
      }
      try {
        const MutexLock lock(lock_of(move.to));
        to.write(key, std::move(*payload));
      } catch (const std::exception&) {
        failed = true;  // destination full or crashed: retry after backoff
      }
      if (!failed) {
        const MutexLock lock(lock_of(move.from));
        from.erase(key);
        return MoveOutcome::kMoved;
      }
    }

    if (attempt + 1 < opts_.max_attempts) {
      ++retries;
      retries_total_->inc();
      std::this_thread::sleep_for(opts_.backoff_base * (1u << attempt));
    }
  }
  return MoveOutcome::kFailed;
}

Result<MigrationReport> MigrationExecutor::execute(
    const MigrationPlan& plan,
    CancellationToken token) {  // NOLINT(performance-unnecessary-value-param)
  if (opts_.max_in_flight == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "MigrationExecutor: max_in_flight must be at least 1"};
  }
  if (opts_.max_attempts == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "MigrationExecutor: max_attempts must be at least 1"};
  }
  for (const FragmentMove& move : plan.moves) {
    if (!stores_.contains(move.from) || !stores_.contains(move.to)) {
      return Error{ErrorCode::kInvalidArgument,
                   "MigrationExecutor: plan names a device outside the "
                   "store set"};
    }
  }

  MigrationReport report;
  if (plan.moves.empty()) return report;

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      opts_.max_in_flight, plan.moves.size()));
  std::atomic<std::size_t> next{0};
  Mutex merge_mu;

  const auto drain = [&] {
    MigrationReport shard;
    for (;;) {
      if (token.cancelled()) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= plan.moves.size()) break;
      const metrics::GaugeGuard inflight_guard(*inflight_);
      metrics::ScopedTimer move_span(*move_latency_ns_);
      const MoveOutcome outcome =
          run_move(plan.moves[i], token, shard.retries);
      switch (outcome) {
        case MoveOutcome::kMoved:
          ++shard.moves_executed;
          moves_total_->inc();
          break;
        case MoveOutcome::kSkipped:
          ++shard.moves_skipped;
          move_span.cancel();
          break;
        case MoveOutcome::kFailed:
          ++shard.moves_failed;
          failures_total_->inc();
          move_span.cancel();
          break;
        case MoveOutcome::kCancelled:
          ++shard.moves_remaining;  // started but abandoned un-moved
          move_span.cancel();
          break;
      }
    }
    const MutexLock lock(merge_mu);
    report.moves_executed += shard.moves_executed;
    report.moves_skipped += shard.moves_skipped;
    report.moves_failed += shard.moves_failed;
    report.moves_remaining += shard.moves_remaining;
    report.retries += shard.retries;
  };

  if (workers == 1) {
    drain();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }

  // Moves no worker ever claimed (fetch_add raced past the end is fine --
  // only indices < size count).
  const std::size_t claimed =
      std::min<std::size_t>(next.load(std::memory_order_relaxed),
                            plan.moves.size());
  report.moves_remaining += plan.moves.size() - claimed;
  report.cancelled = token.cancelled();
  if (report.cancelled) cancellations_total_->inc();
  return report;
}

}  // namespace rds
