#include "src/storage/virtual_disk.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/journal/journal.hpp"
#include "src/journal/record.hpp"
#include "src/metrics/scoped_timer.hpp"
#include "src/util/hash.hpp"

namespace rds {

VirtualDisk::VirtualDisk(ClusterConfig config,
                         std::shared_ptr<RedundancyScheme> scheme,
                         PlacementKind kind)
    : config_(std::move(config)), scheme_(std::move(scheme)), kind_(kind) {
  if (!scheme_) throw std::invalid_argument("VirtualDisk: null scheme");
  strategy_ = make_strategy(config_);
  for (const Device& d : config_.devices()) {
    stores_.emplace(d.uid, std::make_shared<DeviceStore>(d));
  }
  init_metrics();
  publish_epoch();
}

VirtualDisk::VirtualDisk(
    ClusterConfig config, std::shared_ptr<RedundancyScheme> scheme,
    PlacementKind kind, std::uint32_t volume_id,
    std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores)
    : config_(std::move(config)), scheme_(std::move(scheme)), kind_(kind),
      volume_id_(volume_id), stores_(std::move(stores)) {
  if (!scheme_) throw std::invalid_argument("VirtualDisk: null scheme");
  for (const Device& d : config_.devices()) {
    const auto it = stores_.find(d.uid);
    if (it == stores_.end() || !it->second) {
      throw std::invalid_argument(
          "VirtualDisk: shared store missing for device " + d.name);
    }
  }
  strategy_ = make_strategy(config_);
  init_metrics();
  publish_epoch();
}

void VirtualDisk::init_metrics() {
  metrics::Registry& reg = metrics::Registry::global();
  reads_total_ = &reg.counter("rds_storage_reads_total");
  writes_total_ = &reg.counter("rds_storage_writes_total");
  read_bytes_total_ = &reg.counter("rds_storage_read_bytes_total");
  written_bytes_total_ = &reg.counter("rds_storage_written_bytes_total");
  degraded_reads_total_ = &reg.counter("rds_storage_degraded_reads_total");
  checksum_failures_total_ =
      &reg.counter("rds_storage_checksum_failures_total");
  fragments_moved_total_ = &reg.counter("rds_migration_fragments_moved_total");
  migration_bytes_moved_total_ =
      &reg.counter("rds_migration_bytes_moved_total");
  fragments_rebuilt_total_ =
      &reg.counter("rds_migration_fragments_rebuilt_total");
  fragments_repaired_total_ =
      &reg.counter("rds_storage_fragments_repaired_total");
  topology_events_total_ = &reg.counter("rds_topology_events_total");
  placement_latency_ns_ = &reg.histogram("rds_placement_latency_ns");
  migration_step_latency_ns_ = &reg.histogram("rds_migration_step_latency_ns");
}

void VirtualDisk::sync_device_gauge(DeviceId uid) const {
  const auto store = stores_.find(uid);
  if (store == stores_.end()) return;
  auto gauge = device_gauges_.find(uid);
  if (gauge == device_gauges_.end()) {
    gauge = device_gauges_
                .emplace(uid, &metrics::Registry::global().gauge(
                                  "rds_device_fragments",
                                  {{"device", std::to_string(uid)}}))
                .first;
  }
  gauge->second->set(static_cast<std::int64_t>(store->second->used()));
}

void VirtualDisk::publish_device_gauges() const {
  const MutexLock lock(mu_);
  for (const auto& [uid, store] : stores_) sync_device_gauge(uid);
}

std::unique_ptr<ReplicationStrategy> VirtualDisk::make_strategy(
    const ClusterConfig& config) const {
  return make_replication_strategy(kind_, config, scheme_->fragment_count());
}

void VirtualDisk::publish_epoch() {
  auto epoch = std::make_shared<PlacementEpoch>();
  epoch->config = config_;
  epoch->strategy = strategy_;
  epoch->epoch = ++epoch_counter_;
  // rds_lint: allow(atomic-memory-order) -- RcuCell::store is release
  // internally; this is a shared_ptr publish, not a raw atomic op.
  published_.store(std::move(epoch));
}

std::shared_ptr<const PlacementEpoch> VirtualDisk::placement_snapshot()
    const noexcept {
  // rds_lint: allow(atomic-memory-order) -- RcuCell::load is acquire
  // internally; this is a shared_ptr read, not a raw atomic op.
  return published_.load();
}

std::uint64_t VirtualDisk::place(std::uint64_t block,
                                 std::span<DeviceId> out) const {
  // rds_lint: allow(atomic-memory-order) -- see placement_snapshot().
  const std::shared_ptr<const PlacementEpoch> epoch = published_.load();
  epoch->strategy->place(block, out);
  return epoch->epoch;
}

VirtualDisk::CopyLocations VirtualDisk::copy_locations(
    std::uint64_t block) const {
  // rds_lint: allow(atomic-memory-order) -- see placement_snapshot().
  const std::shared_ptr<const PlacementEpoch> epoch = published_.load();
  CopyLocations out;
  out.epoch = epoch->epoch;
  out.devices.resize(epoch->strategy->replication());
  epoch->strategy->place(block, out.devices);
  return out;
}

Result<std::uint64_t> VirtualDisk::try_copy_locations(
    std::uint64_t block, std::span<DeviceId> out) const {
  // rds_lint: allow(atomic-memory-order) -- see placement_snapshot().
  const std::shared_ptr<const PlacementEpoch> epoch = published_.load();
  const unsigned k = epoch->strategy->replication();
  if (out.size() != k) {
    return {ErrorCode::kInvalidArgument,
            "VirtualDisk::try_copy_locations: output span holds " +
                std::to_string(out.size()) + " slots but epoch " +
                std::to_string(epoch->epoch) + " places " +
                std::to_string(k) + " copies (re-size from the same "
                "placement_snapshot, or retry)"};
  }
  epoch->strategy->place(block, out);
  return {epoch->epoch};
}

std::uint64_t VirtualDisk::checksum(
    std::span<const std::uint8_t> payload) noexcept {
  // FNV-1a over the payload, finalized by mix64 (matches util/hash.hpp's
  // string hashing; collisions are 2^-64 events, fine for bit-rot checks).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return mix64(h ^ payload.size());
}

void VirtualDisk::store_fragment(DeviceId target, std::uint64_t block,
                                 unsigned j, Bytes payload) {
  const FragmentKey key{block, j, volume_id_};
  checksums_[key] = checksum(payload);
  stores_.at(target)->write(key, std::move(payload));
  sync_device_gauge(target);
}

const ReplicationStrategy& VirtualDisk::strategy_for(
    std::uint64_t block) const {
  if (next_strategy_ && !pending_.contains(block)) return *next_strategy_;
  return *strategy_;
}

Result<void> VirtualDisk::try_write(std::uint64_t block,
                                    std::span<const std::uint8_t> data) {
  const MutexLock lock(mu_);
  return write_locked(block, data);
}

Result<void> VirtualDisk::write_locked(std::uint64_t block,
                                       std::span<const std::uint8_t> data) {
  std::vector<Bytes> fragments;
  try {
    fragments = scheme_->encode(data);
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  }
  metrics::ScopedTimer placement_span(*placement_latency_ns_);
  const std::vector<DeviceId> targets = strategy_for(block).place(block);
  placement_span.stop();
  writes_total_->inc();
  written_bytes_total_->inc(data.size());

  // If the block already exists, clear its old fragments first (it may have
  // been written under a previous configuration).
  if (blocks_.contains(block)) {
    for (unsigned j = 0; j < scheme_->fragment_count(); ++j) {
      for (auto& [uid, store] : stores_) store->erase({block, j, volume_id_});
      checksums_.erase({block, j, volume_id_});
    }
  }
  for (unsigned j = 0; j < scheme_->fragment_count(); ++j) {
    try {
      store_fragment(targets[j], block, j, std::move(fragments[j]));
    } catch (const std::runtime_error& e) {
      // Device full or crashed.  Fragments stored before the failure stay
      // (same partial state the throwing path always left).
      return Error{ErrorCode::kIoError, e.what()};
    }
    ++stats_.fragments_written;
  }
  blocks_[block] = data.size();
  return {};
}

void VirtualDisk::write(std::uint64_t block,
                        std::span<const std::uint8_t> data) {
  try_write(block, data).value_or_throw();
}

std::vector<std::optional<Bytes>> VirtualDisk::gather_fragments(
    std::uint64_t block, std::span<const DeviceId> locations) {
  std::vector<std::optional<Bytes>> fragments(scheme_->fragment_count());
  for (unsigned j = 0; j < scheme_->fragment_count(); ++j) {
    const auto it = stores_.find(locations[j]);
    if (it == stores_.end()) continue;
    fragments[j] = it->second->read({block, j, volume_id_});
    if (!fragments[j]) continue;
    const auto sum = checksums_.find({block, j, volume_id_});
    if (sum != checksums_.end() && sum->second != checksum(*fragments[j])) {
      // Bit rot: a corrupt fragment is worse than a missing one -- drop it
      // so the decoder reconstructs from healthy peers.
      fragments[j].reset();
      ++stats_.checksum_failures;
      checksum_failures_total_->inc();
    }
  }
  return fragments;
}

Result<std::vector<std::uint8_t>> VirtualDisk::try_read(std::uint64_t block) {
  const MutexLock lock(mu_);
  return read_locked(block);
}

Result<std::vector<std::uint8_t>> VirtualDisk::read_locked(
    std::uint64_t block) {
  const auto size_it = blocks_.find(block);
  if (size_it == blocks_.end()) {
    return Error{ErrorCode::kNotFound, "VirtualDisk: block never written"};
  }
  metrics::ScopedTimer placement_span(*placement_latency_ns_);
  const std::vector<DeviceId> targets = strategy_for(block).place(block);
  placement_span.stop();
  const std::vector<std::optional<Bytes>> fragments =
      gather_fragments(block, targets);

  const auto present = static_cast<unsigned>(std::ranges::count_if(
      fragments, [](const auto& f) { return f.has_value(); }));
  if (present < scheme_->min_fragments()) {
    return Error{ErrorCode::kUnrecoverable, "VirtualDisk: block unrecoverable"};
  }
  if (present < scheme_->fragment_count()) {
    ++stats_.degraded_reads;
    degraded_reads_total_->inc();
  }
  reads_total_->inc();
  read_bytes_total_->inc(size_it->second);
  return scheme_->decode(fragments, size_it->second);
}

std::vector<std::uint8_t> VirtualDisk::read(std::uint64_t block) {
  return try_read(block).value_or_throw();
}

Result<void> VirtualDisk::try_trim(std::uint64_t block) {
  const MutexLock lock(mu_);
  return trim_locked(block);
}

Result<void> VirtualDisk::trim_locked(std::uint64_t block) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end()) {
    return Error{ErrorCode::kNotFound, "VirtualDisk: block never written"};
  }
  const std::vector<DeviceId> targets = strategy_for(block).place(block);
  for (unsigned j = 0; j < scheme_->fragment_count(); ++j) {
    const auto store = stores_.find(targets[j]);
    if (store != stores_.end()) {
      store->second->erase({block, j, volume_id_});
      sync_device_gauge(targets[j]);
    }
    checksums_.erase({block, j, volume_id_});
  }
  blocks_.erase(it);
  pending_.erase(block);
  return {};
}

bool VirtualDisk::trim(std::uint64_t block) {
  const Result<void> result = try_trim(block);
  if (result.ok()) return true;
  if (result.code() == ErrorCode::kNotFound) return false;
  throw_error(result.error());
}

Result<void> VirtualDisk::try_add_device(const Device& device) {
  const MutexLock lock(mu_);
  ClusterConfig next = config_;
  try {
    next.add_device(device);  // validates (duplicate uid, zero capacity, ...)
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  }
  Result<std::size_t> migrated = apply_config_locked(std::move(next));
  if (!migrated.ok()) return migrated.error();
  return journal_locked(journal::make_add_device(device));
}

void VirtualDisk::add_device(const Device& device) {
  try_add_device(device).value_or_throw();
}

void VirtualDisk::set_journal(std::shared_ptr<journal::JournalSink> sink) {
  const MutexLock lock(mu_);
  journal_ = std::move(sink);
}

Result<void> VirtualDisk::journal_locked(const journal::Record& record) {
  if (!journal_) return {};
  const Result<journal::Lsn> appended = journal_->append(record);
  if (appended.ok()) return {};
  return Error{appended.code(),
               "VirtualDisk: operation committed in memory but journaling "
               "failed; snapshot and rotate the journal before further "
               "mutations: " +
                   appended.error().message};
}

void VirtualDisk::attach_device(const Device& device,
                                std::shared_ptr<DeviceStore> store) {
  if (!store) throw std::invalid_argument("attach_device: null store");
  const MutexLock lock(mu_);
  if (reshaping_locked()) {
    throw std::runtime_error("VirtualDisk: reshape already in progress");
  }
  ClusterConfig next = config_;
  next.add_device(device);                 // validates (duplicate uid, ...)
  stores_.emplace(device.uid, std::move(store));
  migrate_to_locked(std::move(next));
}

Result<void> VirtualDisk::try_remove_device(DeviceId uid) {
  const MutexLock lock(mu_);
  const auto it = stores_.find(uid);
  if (it == stores_.end()) {
    return Error{ErrorCode::kNotFound, "VirtualDisk: unknown device"};
  }
  if (it->second->failed()) {
    return Error{ErrorCode::kInvalidArgument,
                 "VirtualDisk: use rebuild() for failed devices"};
  }
  ClusterConfig next = config_;
  next.remove_device(uid);
  Result<std::size_t> migrated = apply_config_locked(std::move(next));
  if (!migrated.ok()) return migrated.error();
  stores_.erase(uid);
  return journal_locked(journal::make_remove_device(uid));
}

void VirtualDisk::remove_device(DeviceId uid) {
  try_remove_device(uid).value_or_throw();
}

Result<void> VirtualDisk::try_resize_device(DeviceId uid,
                                            std::uint64_t new_capacity) {
  const MutexLock lock(mu_);
  const auto it = stores_.find(uid);
  if (it == stores_.end()) {
    return Error{ErrorCode::kNotFound, "VirtualDisk: unknown device"};
  }
  if (it->second->failed()) {
    return Error{ErrorCode::kDeviceFailed,
                 "VirtualDisk: rebuild() required before resizing a failed "
                 "device"};
  }
  ClusterConfig next = config_;
  try {
    next.resize_device(uid, new_capacity);
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  } catch (const std::out_of_range& e) {
    return Error{ErrorCode::kNotFound, e.what()};
  }
  const std::uint64_t old_capacity = it->second->capacity();
  if (new_capacity == old_capacity) return {};
  if (new_capacity > old_capacity) {
    // Grow: extend the store first so the migration can land fragments on
    // the new room.
    it->second->resize(new_capacity);
    Result<std::size_t> migrated = apply_config_locked(std::move(next));
    if (!migrated.ok()) {
      it->second->resize(old_capacity);
      return migrated.error();
    }
  } else {
    // Shrink: drain fragments off under the smaller placement first, then
    // clamp the store.
    Result<std::size_t> migrated = apply_config_locked(std::move(next));
    if (!migrated.ok()) return migrated.error();
    try {
      it->second->resize(new_capacity);
    } catch (const std::invalid_argument& e) {
      // Other volumes sharing this store still occupy it beyond the new
      // capacity; the configuration shrank but the store kept its size.
      return Error{ErrorCode::kIoError, e.what()};
    }
  }
  return journal_locked(journal::make_resize_device(uid, new_capacity));
}

void VirtualDisk::resize_device(DeviceId uid, std::uint64_t new_capacity) {
  try_resize_device(uid, new_capacity).value_or_throw();
}

Result<void> VirtualDisk::try_set_strategy(PlacementKind kind) {
  const MutexLock lock(mu_);
  if (kind == kind_) return {};
  if (reshaping_locked()) {
    return Error{ErrorCode::kReshapeInProgress,
                 "VirtualDisk: reshape already in progress"};
  }
  const PlacementKind previous = kind_;
  kind_ = kind;  // make_strategy() reads it inside apply_config_locked
  Result<std::size_t> migrated = apply_config_locked(config_);
  if (!migrated.ok()) {
    kind_ = previous;
    return migrated.error();
  }
  return journal_locked(journal::make_set_strategy("", kind));
}

void VirtualDisk::set_strategy(PlacementKind kind) {
  try_set_strategy(kind).value_or_throw();
}

Result<void> VirtualDisk::try_set_scheme(
    std::shared_ptr<RedundancyScheme> next) {
  const MutexLock lock(mu_);
  if (!next) {
    return Error{ErrorCode::kInvalidArgument, "VirtualDisk: null scheme"};
  }
  if (next->name() == scheme_->name()) return {};
  if (reshaping_locked()) {
    return Error{ErrorCode::kReshapeInProgress,
                 "VirtualDisk: reshape already in progress"};
  }
  for (const auto& [uid, store] : stores_) {
    if (store->failed()) {
      return Error{ErrorCode::kDeviceFailed,
                   "VirtualDisk: rebuild() required before re-encoding a "
                   "degraded pool"};
    }
  }
  if (next->fragment_count() > config_.size()) {
    return Error{ErrorCode::kInvalidArgument,
                 "VirtualDisk: scheme needs " +
                     std::to_string(next->fragment_count()) +
                     " fragments but the pool has " +
                     std::to_string(config_.size()) + " devices"};
  }
  std::shared_ptr<const ReplicationStrategy> next_strategy;
  try {
    next_strategy =
        make_replication_strategy(kind_, config_, next->fragment_count());
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  }

  // Decode every block up front: if any is unreadable, nothing is mutated.
  std::vector<std::pair<std::uint64_t, Bytes>> contents;
  contents.reserve(blocks_.size());
  for (const auto& [block, size] : blocks_) {
    Result<Bytes> data = read_locked(block);
    if (!data.ok()) {
      return Error{data.code(),
                   "VirtualDisk: set_scheme aborted (nothing mutated); "
                   "block " +
                       std::to_string(block) +
                       " is unreadable: " + data.error().message};
    }
    contents.emplace_back(block, std::move(data).take());
  }

  // Point of no return: drop the old encoding, swap, re-encode.
  const unsigned old_k = scheme_->fragment_count();
  for (const auto& [block, data] : contents) {
    for (unsigned j = 0; j < old_k; ++j) {
      for (auto& [uid, store] : stores_) store->erase({block, j, volume_id_});
      checksums_.erase({block, j, volume_id_});
    }
  }
  scheme_ = std::move(next);
  strategy_ = std::move(next_strategy);
  topology_events_total_->inc();
  publish_epoch();
  for (auto& [block, data] : contents) {
    Result<void> written = write_locked(block, data);
    if (!written.ok()) {
      return Error{written.code(),
                   "VirtualDisk: set_scheme re-encode failed at block " +
                       std::to_string(block) +
                       " (blocks before it are re-encoded, this one and "
                       "later ones are lost): " +
                       written.error().message};
    }
  }
  for (const auto& [uid, store] : stores_) sync_device_gauge(uid);
  return journal_locked(journal::make_set_scheme("", scheme_->name()));
}

void VirtualDisk::set_scheme(std::shared_ptr<RedundancyScheme> next) {
  try_set_scheme(std::move(next)).value_or_throw();
}

void VirtualDisk::fail_device(DeviceId uid) {
  const MutexLock lock(mu_);
  stores_.at(uid)->fail();
  journal_locked(journal::make_fail_device(uid)).value_or_throw();
}

bool VirtualDisk::corrupt_fragment(std::uint64_t block, unsigned fragment) {
  const MutexLock lock(mu_);
  if (!blocks_.contains(block) || fragment >= scheme_->fragment_count()) {
    return false;
  }
  const std::vector<DeviceId> targets = strategy_for(block).place(block);
  const auto store = stores_.find(targets[fragment]);
  if (store == stores_.end()) return false;
  return store->second->corrupt({block, fragment, volume_id_});
}

std::uint64_t VirtualDisk::rebuild() {
  const MutexLock lock(mu_);
  ClusterConfig next = config_;
  std::vector<DeviceId> dead;
  for (const auto& [uid, store] : stores_) {
    if (store->failed()) dead.push_back(uid);
  }
  if (dead.empty()) return 0;
  for (const DeviceId uid : dead) next.remove_device(uid);

  const std::uint64_t rebuilt_before = stats_.fragments_rebuilt;
  migrate_to_locked(std::move(next));
  for (const DeviceId uid : dead) stores_.erase(uid);
  journal_locked(journal::make_rebuild()).value_or_throw();
  return stats_.fragments_rebuilt - rebuilt_before;
}

Result<std::size_t> VirtualDisk::try_begin_reshape(ClusterConfig next) {
  const MutexLock lock(mu_);
  return begin_reshape_locked(std::move(next));
}

Result<std::size_t> VirtualDisk::begin_reshape_locked(ClusterConfig next) {
  if (reshaping_locked()) {
    return Error{ErrorCode::kReshapeInProgress,
                 "VirtualDisk: reshape already in progress"};
  }
  // A failed device must not be a migration target: callers rebuild() before
  // reshaping a degraded pool.
  for (const Device& d : next.devices()) {
    const auto it = stores_.find(d.uid);
    if (it != stores_.end() && it->second->failed()) {
      return Error{
          ErrorCode::kDeviceFailed,
          "VirtualDisk: rebuild() required before migrating a degraded pool"};
    }
  }
  std::unique_ptr<ReplicationStrategy> next_strategy;
  try {
    next_strategy = make_strategy(next);
  } catch (const std::invalid_argument& e) {
    return Error{ErrorCode::kInvalidArgument, e.what()};
  }
  topology_events_total_->inc();
  next_strategy_ = std::move(next_strategy);
  for (const Device& d : next.devices()) {
    if (!stores_.contains(d.uid)) {
      stores_.emplace(d.uid, std::make_shared<DeviceStore>(d));
    }
  }
  next_config_ = std::move(next);
  pending_.clear();
  pending_.reserve(blocks_.size());
  for (const auto& [block, size] : blocks_) pending_.insert(block);
  return pending_.size();
}

std::size_t VirtualDisk::begin_reshape(ClusterConfig next) {
  return try_begin_reshape(std::move(next)).value_or_throw();
}

void VirtualDisk::reshape_block(std::uint64_t block) {
  const unsigned k = scheme_->fragment_count();
  std::vector<DeviceId> old_loc(k), new_loc(k);
  strategy_->place(block, old_loc);
  next_strategy_->place(block, new_loc);

  bool any = false;
  for (unsigned j = 0; j < k; ++j) {
    if (old_loc[j] != new_loc[j]) any = true;
  }
  if (!any) return;

  std::vector<std::optional<Bytes>> fragments =
      gather_fragments(block, old_loc);
  for (unsigned j = 0; j < k; ++j) {
    if (old_loc[j] == new_loc[j]) continue;
    Bytes payload;
    if (fragments[j].has_value()) {
      payload = *fragments[j];
    } else {
      // The source copy is gone (failed device) or rotted: rebuild it.
      payload = scheme_->reconstruct_fragment(fragments, j);
      ++stats_.fragments_rebuilt;
      fragments_rebuilt_total_->inc();
    }
    // Erase before write so a device swapping fragments with another does
    // not transiently exceed its capacity.
    const auto src = stores_.find(old_loc[j]);
    if (src != stores_.end()) {
      src->second->erase({block, j, volume_id_});
      sync_device_gauge(old_loc[j]);
    }
    stats_.bytes_moved += payload.size();
    ++stats_.fragments_moved;
    migration_bytes_moved_total_->inc(payload.size());
    fragments_moved_total_->inc();
    store_fragment(new_loc[j], block, j, std::move(payload));
  }
}

std::size_t VirtualDisk::step_reshape(std::size_t max_blocks) {
  const MutexLock lock(mu_);
  return step_reshape_locked(max_blocks);
}

std::size_t VirtualDisk::step_reshape_locked(std::size_t max_blocks) {
  if (!reshaping_locked()) return 0;
  metrics::ScopedTimer step_span(*migration_step_latency_ns_);
  std::size_t processed = 0;
  while (processed < max_blocks && !pending_.empty()) {
    const std::uint64_t block = *pending_.begin();
    reshape_block(block);
    pending_.erase(pending_.begin());
    ++processed;
  }
  if (pending_.empty()) {
    // Commit the new topology and atomically publish the new epoch:
    // concurrent place() calls flip from the old (strategy, config) pair to
    // the new one in a single step.
    config_ = std::move(next_config_);
    strategy_ = std::move(next_strategy_);
    next_strategy_.reset();
    next_config_ = ClusterConfig{};
    publish_epoch();
  }
  return processed;
}

Result<std::size_t> VirtualDisk::apply_config(ClusterConfig next) {
  const MutexLock lock(mu_);
  return apply_config_locked(std::move(next));
}

Result<std::size_t> VirtualDisk::apply_config_locked(ClusterConfig next) {
  Result<std::size_t> begun = begin_reshape_locked(std::move(next));
  if (!begun.ok()) return begun;
  while (!pending_.empty()) {
    step_reshape_locked(1024);
  }
  step_reshape_locked(1);  // commit when the pool held no blocks at all
  return begun;
}

void VirtualDisk::migrate_to_locked(ClusterConfig next) {
  apply_config_locked(std::move(next)).value_or_throw();
}

std::uint64_t VirtualDisk::repair() {
  const MutexLock lock(mu_);
  const unsigned k = scheme_->fragment_count();
  const std::uint64_t repaired_before = stats_.fragments_repaired;
  std::vector<DeviceId> loc(k);
  for (const auto& [block, size] : blocks_) {
    strategy_for(block).place(block, loc);
    std::vector<std::optional<Bytes>> fragments =
        gather_fragments(block, loc);
    const auto present = static_cast<unsigned>(std::ranges::count_if(
        fragments, [](const auto& f) { return f.has_value(); }));
    if (present == k) continue;                       // fully healthy
    if (present < scheme_->min_fragments()) continue;  // unrecoverable
    for (unsigned j = 0; j < k; ++j) {
      if (fragments[j]) continue;
      const auto store = stores_.find(loc[j]);
      if (store == stores_.end() || store->second->failed()) {
        continue;  // home device gone: rebuild() handles that case
      }
      Bytes payload = scheme_->reconstruct_fragment(fragments, j);
      store_fragment(loc[j], block, j, std::move(payload));
      ++stats_.fragments_repaired;
      fragments_repaired_total_->inc();
    }
  }
  return stats_.fragments_repaired - repaired_before;
}

VirtualDisk::ScrubReport VirtualDisk::scrub() {
  const MutexLock lock(mu_);
  ScrubReport report;
  const unsigned k = scheme_->fragment_count();
  std::vector<DeviceId> loc(k);
  for (const auto& [block, size] : blocks_) {
    ++report.blocks_checked;
    strategy_for(block).place(block, loc);
    // Full read path: presence AND checksum validity.
    const std::vector<std::optional<Bytes>> fragments =
        gather_fragments(block, loc);
    const auto present = static_cast<unsigned>(std::ranges::count_if(
        fragments, [](const auto& f) { return f.has_value(); }));
    if (present < scheme_->min_fragments()) {
      ++report.unreadable_blocks;
    } else if (present < k) {
      ++report.degraded_blocks;
    }
  }
  // Any fragment sitting on a device the placement does not map it to?
  std::uint64_t expected_total = 0;
  for (const auto& [block, size] : blocks_) {
    (void)size;
    expected_total += k;
  }
  std::uint64_t stored_total = 0;
  for (const auto& [uid, store] : stores_) {
    stored_total += store->used_by_volume(volume_id_);
  }
  if (stored_total > expected_total) {
    report.misplaced_fragments = stored_total - expected_total;
  }
  return report;
}

std::vector<std::uint64_t> VirtualDisk::block_ids() const {
  const MutexLock lock(mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(blocks_.size());
  for (const auto& [block, size] : blocks_) ids.push_back(block);
  return ids;
}

std::uint64_t VirtualDisk::used_on(DeviceId uid) const {
  const MutexLock lock(mu_);
  const auto it = stores_.find(uid);
  return it == stores_.end() ? 0 : it->second->used();
}

}  // namespace rds
