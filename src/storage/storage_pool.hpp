// StoragePool: several virtual disks ("volumes") sharing one set of
// physical devices.
//
// Real deployments rarely dedicate a pool to one volume: different datasets
// want different redundancy (a scratch volume mirrored twice, an archive on
// RS(8+2)) on the same spindles.  The pool owns the device stores (capacity
// is contended across volumes) and fans every topology event out to every
// volume, each of which migrates only its own minimal fragment set.
//
// Pool-level operations are serialized by an internal mutex.  Lock order is
// pool -> volume: pool methods may take a volume's internal lock (via the
// VirtualDisk public API) while holding the pool lock, never the reverse.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/virtual_disk.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace rds {

class StoragePool {
 public:
  explicit StoragePool(ClusterConfig config);

  /// Creates a volume spanning every pool device.  Throws on duplicate
  /// names or if the scheme needs more fragments than there are devices.
  VirtualDisk& create_volume(
      const std::string& name, std::shared_ptr<RedundancyScheme> scheme,
      PlacementKind kind = PlacementKind::kRedundantShare) RDS_EXCLUDES(mu_);

  [[nodiscard]] VirtualDisk& volume(const std::string& name)
      RDS_EXCLUDES(mu_);
  [[nodiscard]] bool has_volume(const std::string& name) const
      RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return volumes_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> volume_names() const
      RDS_EXCLUDES(mu_);
  [[nodiscard]] std::size_t volume_count() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return volumes_.size();
  }

  /// Deletes a volume and releases all its fragments from the shared
  /// devices.  Returns whether it existed.
  bool drop_volume(const std::string& name) RDS_EXCLUDES(mu_);

  /// Adds a device to the pool and migrates every volume onto it.  Fails
  /// up front (nothing mutated) if any volume has a reshape in flight.
  void add_device(const Device& device) RDS_EXCLUDES(mu_);

  /// Gracefully removes a device: every volume drains its fragments first.
  /// Fails up front (nothing mutated) if any volume has a reshape in
  /// flight.
  void remove_device(DeviceId uid) RDS_EXCLUDES(mu_);

  /// Changes a pool device's capacity: growing extends the store then
  /// migrates every volume onto the new room; shrinking drains every
  /// volume off first, then clamps the store.  Throws std::out_of_range
  /// for unknown devices, std::invalid_argument for failed devices or
  /// capacities below the device's occupancy.
  void resize_device(DeviceId uid, std::uint64_t new_capacity)
      RDS_EXCLUDES(mu_);

  /// Swaps one volume's placement strategy live (re-places only that
  /// volume's fragments).  Throws std::out_of_range for unknown volumes.
  void set_volume_strategy(const std::string& name, PlacementKind kind)
      RDS_EXCLUDES(mu_);

  /// Re-encodes one volume under a new redundancy scheme.  Throws
  /// std::out_of_range for unknown volumes; error codes from
  /// VirtualDisk::try_set_scheme surface as exceptions.
  void set_volume_scheme(const std::string& name,
                         std::shared_ptr<RedundancyScheme> scheme)
      RDS_EXCLUDES(mu_);

  /// Attaches a journal sink: every committed pool mutation is appended in
  /// commit order (docs/persistence.md).  The sink's mutex is a leaf below
  /// the pool -> volume lock order.  Pass nullptr to detach.
  void set_journal(std::shared_ptr<journal::JournalSink> sink)
      RDS_EXCLUDES(mu_);

  /// Crashes a device for every volume at once (stores are shared).
  void fail_device(DeviceId uid) RDS_EXCLUDES(mu_);

  /// Drops failed devices and restores full redundancy on every volume.
  /// Returns total fragments rebuilt across volumes.
  std::uint64_t rebuild() RDS_EXCLUDES(mu_);

  /// Pool-owner view of the configuration.  The reference stays valid for
  /// the pool's lifetime; read it while no topology mutation runs
  /// concurrently.
  [[nodiscard]] const ClusterConfig& config() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return config_;
  }

  struct DeviceUsage {
    Device device;
    std::uint64_t used = 0;  ///< fragments across all volumes
    bool failed = false;
  };
  [[nodiscard]] std::vector<DeviceUsage> usage() const RDS_EXCLUDES(mu_);

  /// Refreshes the pool-level gauges (`rds_pool_volumes`,
  /// `rds_pool_devices`) and every volume's per-device load gauges.  Call
  /// before exporting a metrics snapshot.
  void publish_metrics() const RDS_EXCLUDES(mu_);

 private:
  friend class Snapshot;

  /// Throws if any volume has a reshape in flight; topology fan-out must
  /// fail before mutating the first volume, not midway through.
  void ensure_no_reshape() const RDS_REQUIRES(mu_);

  /// Appends a record to the attached journal (no-op without one).  Runs
  /// after the in-memory mutation committed, inside the same critical
  /// section, so journal order is commit order.  Throws std::runtime_error
  /// if the append fails (the journal is now behind the pool).
  void journal_locked(const journal::Record& record) RDS_REQUIRES(mu_);

  /// Serializes pool topology and the volume table; mutable so const
  /// observers (usage(), config(), ...) can take it.
  mutable Mutex mu_;

  ClusterConfig config_ RDS_GUARDED_BY(mu_);
  std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores_
      RDS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<VirtualDisk>> volumes_
      RDS_GUARDED_BY(mu_);
  std::uint32_t next_volume_id_ RDS_GUARDED_BY(mu_) = 1;
  std::shared_ptr<journal::JournalSink> journal_ RDS_GUARDED_BY(mu_);
};

}  // namespace rds
