// StoragePool: several virtual disks ("volumes") sharing one set of
// physical devices.
//
// Real deployments rarely dedicate a pool to one volume: different datasets
// want different redundancy (a scratch volume mirrored twice, an archive on
// RS(8+2)) on the same spindles.  The pool owns the device stores (capacity
// is contended across volumes) and fans every topology event out to every
// volume, each of which migrates only its own minimal fragment set.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/virtual_disk.hpp"

namespace rds {

class StoragePool {
 public:
  explicit StoragePool(ClusterConfig config);

  /// Creates a volume spanning every pool device.  Throws on duplicate
  /// names or if the scheme needs more fragments than there are devices.
  VirtualDisk& create_volume(
      const std::string& name, std::shared_ptr<RedundancyScheme> scheme,
      PlacementKind kind = PlacementKind::kRedundantShare);

  [[nodiscard]] VirtualDisk& volume(const std::string& name);
  [[nodiscard]] bool has_volume(const std::string& name) const {
    return volumes_.contains(name);
  }
  [[nodiscard]] std::vector<std::string> volume_names() const;
  [[nodiscard]] std::size_t volume_count() const noexcept {
    return volumes_.size();
  }

  /// Deletes a volume and releases all its fragments from the shared
  /// devices.  Returns whether it existed.
  bool drop_volume(const std::string& name);

  /// Adds a device to the pool and migrates every volume onto it.
  void add_device(const Device& device);

  /// Gracefully removes a device: every volume drains its fragments first.
  void remove_device(DeviceId uid);

  /// Crashes a device for every volume at once (stores are shared).
  void fail_device(DeviceId uid);

  /// Drops failed devices and restores full redundancy on every volume.
  /// Returns total fragments rebuilt across volumes.
  std::uint64_t rebuild();

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  struct DeviceUsage {
    Device device;
    std::uint64_t used = 0;  ///< fragments across all volumes
    bool failed = false;
  };
  [[nodiscard]] std::vector<DeviceUsage> usage() const;

  /// Refreshes the pool-level gauges (`rds_pool_volumes`,
  /// `rds_pool_devices`) and every volume's per-device load gauges.  Call
  /// before exporting a metrics snapshot.
  void publish_metrics() const;

 private:
  friend class Snapshot;

  ClusterConfig config_;
  std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores_;
  std::map<std::string, std::unique_ptr<VirtualDisk>> volumes_;
  std::uint32_t next_volume_id_ = 1;
};

}  // namespace rds
