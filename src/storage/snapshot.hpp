// Snapshot persistence: save/restore the full state of a VirtualDisk or a
// StoragePool to a byte stream (metadata, fragment payloads, checksums,
// failure flags).  Restart semantics for the simulation stack: a loaded
// snapshot behaves identically to the original, including degraded state.
//
// Format: little-endian, length-prefixed, versioned magic header.  Not a
// wire protocol -- a local persistence format with a strict version check.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "src/storage/file_store.hpp"
#include "src/storage/storage_pool.hpp"
#include "src/storage/virtual_disk.hpp"

namespace rds {

/// Reconstructs a redundancy scheme from its name() string
/// ("mirror(k=2)", "reed-solomon(4+2)", "evenodd(p=5)", "rdp(p=7)").
/// Parsing is strict: the whole string must be consumed (no trailing
/// garbage), numbers must fit an unsigned, and the scheme constructors'
/// own validation (zero shards, non-prime p, ...) applies.  Throws
/// std::invalid_argument with a message naming what was wrong.
[[nodiscard]] std::shared_ptr<RedundancyScheme> make_scheme_from_name(
    const std::string& name);

class Snapshot {
 public:
  /// Serializes a standalone disk (configuration, placement kind, scheme,
  /// block table, checksums, device stores including failure flags).
  /// Throws std::runtime_error if a reshape is in flight.
  static void save_disk(const VirtualDisk& disk, std::ostream& out);

  /// Restores a disk saved by save_disk.  Throws std::runtime_error on a
  /// bad magic/version or truncated stream.
  static VirtualDisk load_disk(std::istream& in);

  /// Serializes a pool: shared stores once, then every volume's metadata.
  static void save_pool(const StoragePool& pool, std::ostream& out);
  static StoragePool load_pool(std::istream& in);

  /// Serializes a file store: the file table, free list and block
  /// allocator, then the underlying disk (save_disk format, embedded).
  static void save_file_store(const FileStore& store, std::ostream& out);
  static FileStore load_file_store(std::istream& in);

 private:
  // Volume metadata section (needs VirtualDisk friendship; stores are
  // serialized separately so pool snapshots write shared payloads once).
  static void put_volume_meta(std::ostream& out, const VirtualDisk& disk);
  static VirtualDisk get_volume_meta(
      std::istream& in,
      std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores);
};

}  // namespace rds
