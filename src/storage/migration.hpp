// Migration planning: the minimal fragment moves between two placement
// strategies over the same block population.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/placement/strategy.hpp"

namespace rds {

struct FragmentMove {
  std::uint64_t block = 0;
  std::uint32_t fragment = 0;  ///< copy index
  DeviceId from = kNoDevice;
  DeviceId to = kNoDevice;
};

struct MigrationPlan {
  std::vector<FragmentMove> moves;
  std::uint64_t unchanged_fragments = 0;
  std::uint64_t total_fragments = 0;

  [[nodiscard]] double moved_fraction() const noexcept {
    return total_fragments == 0
               ? 0.0
               : static_cast<double>(moves.size()) /
                     static_cast<double>(total_fragments);
  }
};

/// Computes the per-fragment moves required to re-place `blocks` from
/// `before` to `after`.  Both strategies must have the same replication
/// degree.  A fragment moves iff its copy-index slot lands on a different
/// device (erasure semantics -- fragment identity matters).
[[nodiscard]] MigrationPlan plan_migration(const ReplicationStrategy& before,
                                           const ReplicationStrategy& after,
                                           std::span<const std::uint64_t> blocks);

}  // namespace rds
