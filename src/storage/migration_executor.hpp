// Parallel execution of a MigrationPlan against a set of device stores.
//
// plan_migration() says *what* must move; this executor is the *how*: a
// bounded window of in-flight moves (worker threads pulling from one shared
// queue), per-move retry with exponential backoff against transient device
// faults, and cooperative cancellation.  Faults are injectable (tests,
// chaos) through the FaultInjector hook; real failures -- a destination
// store throwing because it is full or crashed -- take the same retry path.
//
// Per-device mutexes serialize the store operations of one device while
// moves on disjoint devices proceed in parallel; the stores themselves stay
// single-threaded objects.  Locks are taken one at a time (read source /
// write destination / erase source), never nested, so no ordering issues.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/core/result.hpp"
#include "src/storage/device_store.hpp"
#include "src/storage/migration.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace rds::metrics {
class Counter;
class Gauge;
class LatencyHistogram;
}  // namespace rds::metrics

namespace rds {

/// Test/chaos hook: veto individual move attempts.  `attempt` is 0-based;
/// returning true fails that attempt (the executor backs off and retries).
/// Called concurrently from the worker threads -- implementations must be
/// thread-safe.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  [[nodiscard]] virtual bool should_fail(const FragmentMove& move,
                                         unsigned attempt) = 0;
};

/// Shared cancellation flag; copies observe the same flag.  cancel() is
/// sticky and safe from any thread (a watchdog can hold a copy).
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void cancel() const noexcept {
    flag_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct MigrationExecutorOptions {
  unsigned max_in_flight = 4;  ///< concurrent moves (worker threads)
  unsigned max_attempts = 4;   ///< first try + retries per move
  std::chrono::microseconds backoff_base{50};  ///< doubles per retry
  FaultInjector* faults = nullptr;  ///< nullptr = no injected faults
};

struct MigrationReport {
  std::uint64_t moves_executed = 0;
  std::uint64_t moves_skipped = 0;   ///< source fragment absent
  std::uint64_t moves_failed = 0;    ///< attempts exhausted
  std::uint64_t moves_remaining = 0; ///< never started (cancellation)
  std::uint64_t retries = 0;
  bool cancelled = false;

  [[nodiscard]] bool complete() const noexcept {
    return !cancelled && moves_failed == 0 && moves_remaining == 0;
  }
};

class MigrationExecutor {
 public:
  /// `stores` must cover every device the plans will touch; `volume_id`
  /// namespaces the fragment keys (0 for standalone disks).
  MigrationExecutor(
      std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores,
      std::uint32_t volume_id = 0, MigrationExecutorOptions options = {});

  /// Executes every move of `plan`.  Invalid options or a move naming a
  /// device outside the store set fail eagerly with kInvalidArgument
  /// (nothing executed); otherwise the report says what happened, including
  /// partial progress under cancellation.
  /// `token` is taken by value on purpose: it is a shared handle the worker
  /// threads capture, and a reference could dangle past the caller's scope.
  [[nodiscard]] Result<MigrationReport> execute(
      const MigrationPlan& plan,
      CancellationToken token = {});  // NOLINT(performance-unnecessary-value-param)

 private:
  enum class MoveOutcome { kMoved, kSkipped, kFailed, kCancelled };

  [[nodiscard]] MoveOutcome run_move(const FragmentMove& move,
                                     const CancellationToken& token,
                                     std::uint64_t& retries);
  [[nodiscard]] Mutex& lock_of(DeviceId uid) { return locks_.at(uid); }

  // One capability per device: MutexLock on lock_of(uid) serializes that
  // device's store while disjoint devices proceed in parallel.  The
  // per-device association is runtime state the static analysis cannot
  // express as a GUARDED_BY, so the stores stay unannotated; the locking
  // protocol (one lock at a time, never nested) is documented above.
  std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores_;
  std::unordered_map<DeviceId, Mutex> locks_;
  std::uint32_t volume_id_;
  MigrationExecutorOptions opts_;

  // Registry-owned instruments (see docs/metrics.md).
  metrics::Counter* moves_total_ = nullptr;
  metrics::Counter* retries_total_ = nullptr;
  metrics::Counter* failures_total_ = nullptr;
  metrics::Counter* cancellations_total_ = nullptr;
  metrics::Gauge* inflight_ = nullptr;
  metrics::LatencyHistogram* move_latency_ns_ = nullptr;
};

}  // namespace rds
