#include "src/storage/storage_pool.hpp"

#include <stdexcept>
#include <utility>

#include "src/journal/journal.hpp"
#include "src/journal/record.hpp"
#include "src/metrics/registry.hpp"

namespace rds {

StoragePool::StoragePool(ClusterConfig config) : config_(std::move(config)) {
  for (const Device& d : config_.devices()) {
    stores_.emplace(d.uid, std::make_shared<DeviceStore>(d));
  }
}

VirtualDisk& StoragePool::create_volume(
    const std::string& name, std::shared_ptr<RedundancyScheme> scheme,
    PlacementKind kind) {
  const MutexLock lock(mu_);
  if (volumes_.contains(name)) {
    throw std::invalid_argument("StoragePool: duplicate volume " + name);
  }
  const std::string scheme_name = scheme ? scheme->name() : std::string{};
  auto disk = std::make_unique<VirtualDisk>(config_, std::move(scheme), kind,
                                            next_volume_id_++, stores_);
  VirtualDisk& ref = *disk;
  volumes_.emplace(name, std::move(disk));
  metrics::Registry::global().counter("rds_pool_volumes_created_total").inc();
  journal_locked(journal::make_create_volume(name, scheme_name, kind));
  return ref;
}

void StoragePool::set_journal(std::shared_ptr<journal::JournalSink> sink) {
  const MutexLock lock(mu_);
  journal_ = std::move(sink);
}

void StoragePool::journal_locked(const journal::Record& record) {
  if (!journal_) return;
  const Result<journal::Lsn> appended = journal_->append(record);
  if (!appended.ok()) {
    throw std::runtime_error(
        "StoragePool: operation committed in memory but journaling failed; "
        "snapshot and rotate the journal before further mutations: " +
        appended.error().message);
  }
}

VirtualDisk& StoragePool::volume(const std::string& name) {
  const MutexLock lock(mu_);
  const auto it = volumes_.find(name);
  if (it == volumes_.end()) {
    throw std::out_of_range("StoragePool: unknown volume " + name);
  }
  return *it->second;
}

std::vector<std::string> StoragePool::volume_names() const {
  const MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(volumes_.size());
  for (const auto& [name, disk] : volumes_) names.push_back(name);
  return names;
}

bool StoragePool::drop_volume(const std::string& name) {
  const MutexLock lock(mu_);
  const auto it = volumes_.find(name);
  if (it == volumes_.end()) return false;
  // Release the volume's fragments so the shared capacity is reusable.
  for (const std::uint64_t block : it->second->block_ids()) {
    it->second->trim(block);
  }
  volumes_.erase(it);
  journal_locked(journal::make_drop_volume(name));
  return true;
}

void StoragePool::ensure_no_reshape() const {
  for (const auto& [name, disk] : volumes_) {
    if (disk->reshaping()) {
      throw std::runtime_error("StoragePool: volume '" + name +
                               "' has a reshape in flight; drain it before "
                               "changing the pool topology");
    }
  }
}

void StoragePool::add_device(const Device& device) {
  const MutexLock lock(mu_);
  if (config_.contains(device.uid)) {
    throw std::invalid_argument("StoragePool: duplicate device uid");
  }
  // Check every volume up front: attach_device throws on a reshaping
  // volume, and discovering that mid-loop would leave the volumes before
  // it migrated onto the device and the rest not.
  ensure_no_reshape();
  auto store = std::make_shared<DeviceStore>(device);
  for (const auto& [name, disk] : volumes_) {
    disk->attach_device(device, store);
  }
  stores_.emplace(device.uid, std::move(store));
  config_.add_device(device);
  journal_locked(journal::make_add_device(device));
}

void StoragePool::remove_device(DeviceId uid) {
  const MutexLock lock(mu_);
  if (!config_.contains(uid)) {
    throw std::out_of_range("StoragePool: unknown device");
  }
  ensure_no_reshape();
  for (const auto& [name, disk] : volumes_) {
    disk->remove_device(uid);
  }
  stores_.erase(uid);
  config_.remove_device(uid);
  journal_locked(journal::make_remove_device(uid));
}

void StoragePool::resize_device(DeviceId uid, std::uint64_t new_capacity) {
  const MutexLock lock(mu_);
  const auto it = stores_.find(uid);
  if (it == stores_.end() || !config_.contains(uid)) {
    throw std::out_of_range("StoragePool: unknown device");
  }
  if (it->second->failed()) {
    throw std::invalid_argument(
        "StoragePool: rebuild() before resizing a failed device");
  }
  ensure_no_reshape();
  ClusterConfig next = config_;
  next.resize_device(uid, new_capacity);  // validates zero capacity
  const std::uint64_t old_capacity = it->second->capacity();
  if (new_capacity == old_capacity) return;
  if (new_capacity > old_capacity) {
    it->second->resize(new_capacity);  // grow the store first
    for (const auto& [name, disk] : volumes_) {
      disk->apply_config(next).value_or_throw();
    }
  } else {
    // Shrink: drain every volume off the lost capacity first; resize()
    // then validates the store really is under the new cap.
    for (const auto& [name, disk] : volumes_) {
      disk->apply_config(next).value_or_throw();
    }
    it->second->resize(new_capacity);
  }
  config_ = std::move(next);
  journal_locked(journal::make_resize_device(uid, new_capacity));
}

void StoragePool::set_volume_strategy(const std::string& name,
                                      PlacementKind kind) {
  const MutexLock lock(mu_);
  const auto it = volumes_.find(name);
  if (it == volumes_.end()) {
    throw std::out_of_range("StoragePool: unknown volume " + name);
  }
  it->second->try_set_strategy(kind).value_or_throw();
  journal_locked(journal::make_set_strategy(name, kind));
}

void StoragePool::set_volume_scheme(const std::string& name,
                                    std::shared_ptr<RedundancyScheme> scheme) {
  const MutexLock lock(mu_);
  if (!scheme) throw std::invalid_argument("StoragePool: null scheme");
  const auto it = volumes_.find(name);
  if (it == volumes_.end()) {
    throw std::out_of_range("StoragePool: unknown volume " + name);
  }
  const std::string scheme_name = scheme->name();
  it->second->try_set_scheme(std::move(scheme)).value_or_throw();
  journal_locked(journal::make_set_scheme(name, scheme_name));
}

void StoragePool::fail_device(DeviceId uid) {
  const MutexLock lock(mu_);
  const auto it = stores_.find(uid);
  if (it == stores_.end()) {
    throw std::out_of_range("StoragePool: unknown device");
  }
  it->second->fail();
  journal_locked(journal::make_fail_device(uid));
}

std::uint64_t StoragePool::rebuild() {
  const MutexLock lock(mu_);
  std::uint64_t rebuilt = 0;
  for (const auto& [name, disk] : volumes_) {
    rebuilt += disk->rebuild();
  }
  // Drop the pool's references to dead stores and devices.
  std::vector<DeviceId> dead;
  for (const auto& [uid, store] : stores_) {
    if (store->failed()) dead.push_back(uid);
  }
  for (const DeviceId uid : dead) {
    stores_.erase(uid);
    config_.remove_device(uid);
  }
  if (!dead.empty()) journal_locked(journal::make_rebuild());
  return rebuilt;
}

void StoragePool::publish_metrics() const {
  const MutexLock lock(mu_);
  metrics::Registry& reg = metrics::Registry::global();
  reg.gauge("rds_pool_volumes")
      .set(static_cast<std::int64_t>(volumes_.size()));
  reg.gauge("rds_pool_devices")
      .set(static_cast<std::int64_t>(config_.size()));
  for (const auto& [name, disk] : volumes_) disk->publish_device_gauges();
}

std::vector<StoragePool::DeviceUsage> StoragePool::usage() const {
  const MutexLock lock(mu_);
  std::vector<DeviceUsage> out;
  out.reserve(config_.size());
  for (const Device& d : config_.devices()) {
    const auto it = stores_.find(d.uid);
    DeviceUsage u;
    u.device = d;
    if (it != stores_.end()) {
      u.used = it->second->used();
      u.failed = it->second->failed();
    }
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace rds
