#include "src/storage/snapshot.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/erasure/rdp.hpp"

namespace rds {
namespace {

constexpr char kDiskMagic[] = "RDSDISK1";
constexpr char kPoolMagic[] = "RDSPOOL1";
constexpr char kFileStoreMagic[] = "RDSFSTO1";

// ---- little-endian primitives ---------------------------------------------

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void put_bytes(std::ostream& out, const Bytes& b) {
  put_u64(out, b.size());
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

std::uint8_t get_u8(std::istream& in) {
  const int c = in.get();
  if (c == std::char_traits<char>::eof()) {
    throw std::runtime_error("snapshot: truncated stream");
  }
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(get_u8(in)) << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(get_u8(in)) << (8 * i);
  return v;
}

std::string get_string(std::istream& in) {
  const std::uint32_t size = get_u32(in);
  std::string s(size, '\0');
  in.read(s.data(), size);
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw std::runtime_error("snapshot: truncated stream");
  }
  return s;
}

Bytes get_bytes(std::istream& in) {
  const std::uint64_t size = get_u64(in);
  Bytes b(size);
  in.read(reinterpret_cast<char*>(b.data()),
          static_cast<std::streamsize>(size));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw std::runtime_error("snapshot: truncated stream");
  }
  return b;
}

void expect_magic(std::istream& in, const char* magic) {
  char buf[8];
  in.read(buf, 8);
  if (in.gcount() != 8 || std::string(buf, 8) != std::string(magic, 8)) {
    throw std::runtime_error("snapshot: bad magic/version");
  }
}

// ---- sections --------------------------------------------------------------

void put_config(std::ostream& out, const ClusterConfig& config) {
  put_u32(out, static_cast<std::uint32_t>(config.size()));
  for (const Device& d : config.devices()) {
    put_u64(out, d.uid);
    put_u64(out, d.capacity);
    put_string(out, d.name);
  }
}

ClusterConfig get_config(std::istream& in) {
  const std::uint32_t n = get_u32(in);
  std::vector<Device> devices;
  devices.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Device d;
    d.uid = get_u64(in);
    d.capacity = get_u64(in);
    d.name = get_string(in);
    devices.push_back(std::move(d));
  }
  return ClusterConfig(std::move(devices));
}

void put_store(std::ostream& out, const DeviceStore& store) {
  put_u64(out, store.device().uid);
  put_u64(out, store.device().capacity);
  put_string(out, store.device().name);
  put_u8(out, store.failed() ? 1 : 0);
  // A failed device's contents are unreadable: persist the flag only.
  if (store.failed()) {
    put_u64(out, 0);
    return;
  }
  put_u64(out, store.used());
  for (const auto& [key, payload] : store.contents()) {
    put_u64(out, key.block);
    put_u32(out, key.fragment);
    put_u32(out, key.volume);
    put_bytes(out, payload);
  }
}

std::shared_ptr<DeviceStore> get_store(std::istream& in) {
  Device d;
  d.uid = get_u64(in);
  d.capacity = get_u64(in);
  d.name = get_string(in);
  const bool failed = get_u8(in) != 0;
  auto store = std::make_shared<DeviceStore>(d);
  const std::uint64_t fragments = get_u64(in);
  for (std::uint64_t f = 0; f < fragments; ++f) {
    FragmentKey key;
    key.block = get_u64(in);
    key.fragment = get_u32(in);
    key.volume = get_u32(in);
    store->write(key, get_bytes(in));
  }
  if (failed) store->fail();
  return store;
}

}  // namespace

void Snapshot::put_volume_meta(std::ostream& out, const VirtualDisk& disk) {
  const MutexLock lock(disk.mu_);
  put_u8(out, static_cast<std::uint8_t>(disk.kind_));
  put_u32(out, disk.volume_id_);
  put_string(out, disk.scheme_->name());
  put_config(out, disk.config_);
  put_u64(out, disk.blocks_.size());
  for (const auto& [block, size] : disk.blocks_) {
    put_u64(out, block);
    put_u64(out, size);
  }
  put_u64(out, disk.checksums_.size());
  for (const auto& [key, sum] : disk.checksums_) {
    put_u64(out, key.block);
    put_u32(out, key.fragment);
    put_u32(out, key.volume);
    put_u64(out, sum);
  }
  // Stats are observability, not state: deliberately not persisted.
}

VirtualDisk Snapshot::get_volume_meta(
    std::istream& in,
    std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores) {
  const auto kind = static_cast<PlacementKind>(get_u8(in));
  const std::uint32_t volume_id = get_u32(in);
  const std::string scheme_name = get_string(in);
  ClusterConfig config = get_config(in);
  VirtualDisk disk(std::move(config), make_scheme_from_name(scheme_name),
                   kind, volume_id, std::move(stores));
  {
    // The disk is private to this function, but its block/checksum tables
    // are lock-guarded members; take the lock so the access is provably
    // consistent under the thread-safety analysis.
    const MutexLock lock(disk.mu_);
    const std::uint64_t blocks = get_u64(in);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t block = get_u64(in);
      disk.blocks_[block] = get_u64(in);
    }
    const std::uint64_t sums = get_u64(in);
    for (std::uint64_t s = 0; s < sums; ++s) {
      FragmentKey key;
      key.block = get_u64(in);
      key.fragment = get_u32(in);
      key.volume = get_u32(in);
      disk.checksums_[key] = get_u64(in);
    }
  }
  return disk;
}

std::shared_ptr<RedundancyScheme> make_scheme_from_name(
    const std::string& name) {
  const auto bad = [&](const std::string& why) {
    return std::invalid_argument("make_scheme_from_name: " + why + ": '" +
                                 name + "'");
  };
  // Strict unsigned parse: the whole token must be digits and fit.
  const auto number = [&](std::string_view token) -> unsigned {
    unsigned value = 0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::result_out_of_range) {
      throw bad("number out of range");
    }
    if (ec != std::errc{} || end != token.data() + token.size() ||
        token.empty()) {
      throw bad("malformed number '" + std::string(token) + "'");
    }
    return value;
  };
  // The parameter list between `prefix` and a ')' that must end the string.
  const auto inner = [&](std::string_view prefix) -> std::string_view {
    std::string_view rest = std::string_view(name).substr(prefix.size());
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) throw bad("missing ')'");
    if (close + 1 != rest.size()) throw bad("trailing characters after ')'");
    return rest.substr(0, close);
  };
  if (name.starts_with("mirror(k=")) {
    return std::make_shared<MirroringScheme>(number(inner("mirror(k=")));
  }
  if (name.starts_with("reed-solomon(")) {
    const std::string_view body = inner("reed-solomon(");
    const std::size_t plus = body.find('+');
    if (plus == std::string_view::npos) throw bad("expected 'D+P'");
    return std::make_shared<ReedSolomonScheme>(number(body.substr(0, plus)),
                                               number(body.substr(plus + 1)));
  }
  if (name.starts_with("evenodd(p=")) {
    return std::make_shared<EvenOddScheme>(number(inner("evenodd(p=")));
  }
  if (name.starts_with("rdp(p=")) {
    return std::make_shared<RdpScheme>(number(inner("rdp(p=")));
  }
  throw bad("unknown scheme kind");
}

void Snapshot::save_disk(const VirtualDisk& disk, std::ostream& out) {
  if (disk.reshaping()) {
    throw std::runtime_error("Snapshot: drain the reshape before saving");
  }
  out.write(kDiskMagic, 8);
  {
    // Scoped: put_volume_meta takes the same (non-reentrant) lock.
    const MutexLock lock(disk.mu_);
    put_u32(out, static_cast<std::uint32_t>(disk.stores_.size()));
    for (const auto& [uid, store] : disk.stores_) put_store(out, *store);
  }
  put_volume_meta(out, disk);
  if (!out) throw std::runtime_error("Snapshot: write failed");
}

VirtualDisk Snapshot::load_disk(std::istream& in) {
  expect_magic(in, kDiskMagic);
  const std::uint32_t n = get_u32(in);
  std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto store = get_store(in);
    const DeviceId uid = store->device().uid;
    stores.emplace(uid, std::move(store));
  }
  return get_volume_meta(in, std::move(stores));
}

void Snapshot::save_pool(const StoragePool& pool, std::ostream& out) {
  // Lock order pool -> volume: the per-disk sections below take each
  // volume's own lock while the pool lock is held.
  const MutexLock lock(pool.mu_);
  for (const auto& [name, disk] : pool.volumes_) {
    if (disk->reshaping()) {
      throw std::runtime_error("Snapshot: drain reshapes before saving");
    }
  }
  out.write(kPoolMagic, 8);
  put_u32(out, pool.next_volume_id_);
  put_config(out, pool.config_);
  put_u32(out, static_cast<std::uint32_t>(pool.stores_.size()));
  for (const auto& [uid, store] : pool.stores_) put_store(out, *store);
  put_u32(out, static_cast<std::uint32_t>(pool.volumes_.size()));
  for (const auto& [name, disk] : pool.volumes_) {
    put_string(out, name);
    put_volume_meta(out, *disk);
  }
  if (!out) throw std::runtime_error("Snapshot: write failed");
}

StoragePool Snapshot::load_pool(std::istream& in) {
  expect_magic(in, kPoolMagic);
  const std::uint32_t next_volume_id = get_u32(in);
  ClusterConfig config = get_config(in);

  std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores;
  const std::uint32_t n_stores = get_u32(in);
  for (std::uint32_t i = 0; i < n_stores; ++i) {
    auto store = get_store(in);
    const DeviceId uid = store->device().uid;
    stores.emplace(uid, std::move(store));
  }

  StoragePool pool{ClusterConfig{}};
  {
    // Same reasoning as get_volume_meta: the pool is local, its tables are
    // guarded.
    const MutexLock lock(pool.mu_);
    pool.config_ = std::move(config);
    pool.stores_ = std::move(stores);
    pool.next_volume_id_ = next_volume_id;

    const std::uint32_t n_volumes = get_u32(in);
    for (std::uint32_t i = 0; i < n_volumes; ++i) {
      std::string name = get_string(in);
      pool.volumes_.emplace(
          std::move(name),
          std::make_unique<VirtualDisk>(get_volume_meta(in, pool.stores_)));
    }
  }
  return pool;
}

void Snapshot::save_file_store(const FileStore& store, std::ostream& out) {
  out.write(kFileStoreMagic, 8);
  put_u64(out, store.block_size_);
  put_u64(out, store.next_block_);
  put_u64(out, store.free_blocks_.size());
  for (const std::uint64_t id : store.free_blocks_) put_u64(out, id);
  put_u32(out, static_cast<std::uint32_t>(store.files_.size()));
  for (const auto& [name, entry] : store.files_) {
    put_string(out, name);
    put_u64(out, entry.size);
    put_u64(out, entry.block_ids.size());
    for (const std::uint64_t id : entry.block_ids) put_u64(out, id);
  }
  save_disk(store.disk_, out);
  if (!out) throw std::runtime_error("Snapshot: write failed");
}

FileStore Snapshot::load_file_store(std::istream& in) {
  expect_magic(in, kFileStoreMagic);
  const std::uint64_t block_size = get_u64(in);
  const std::uint64_t next_block = get_u64(in);
  std::vector<std::uint64_t> free_blocks(get_u64(in));
  for (std::uint64_t& id : free_blocks) id = get_u64(in);
  std::map<std::string, FileStore::FileEntry> files;
  const std::uint32_t n_files = get_u32(in);
  for (std::uint32_t i = 0; i < n_files; ++i) {
    std::string name = get_string(in);
    FileStore::FileEntry entry;
    entry.size = get_u64(in);
    entry.block_ids.resize(get_u64(in));
    for (std::uint64_t& id : entry.block_ids) id = get_u64(in);
    files.emplace(std::move(name), std::move(entry));
  }
  FileStore store(load_disk(in), static_cast<std::size_t>(block_size));
  store.files_ = std::move(files);
  store.free_blocks_ = std::move(free_blocks);
  store.next_block_ = next_block;
  return store;
}

}  // namespace rds
