// In-memory simulation of one physical storage device.
//
// Substitution note (see DESIGN.md): the paper's evaluation is itself a
// block-count simulation; this store adds actual byte payloads so the
// virtualization layer above can be tested end-to-end (write -> migrate ->
// fail -> rebuild -> read back), while every placement-level number stays
// identical to a hardware deployment.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/cluster/device.hpp"

namespace rds {

/// Key of one stored fragment: (logical block address, fragment index,
/// owning volume).  The volume field namespaces co-hosted volumes that
/// share one set of device stores (see storage/storage_pool.hpp).
struct FragmentKey {
  std::uint64_t block = 0;
  std::uint32_t fragment = 0;
  std::uint32_t volume = 0;

  friend bool operator==(const FragmentKey&, const FragmentKey&) = default;
};

struct FragmentKeyHash {
  [[nodiscard]] std::size_t operator()(const FragmentKey& k) const noexcept;
};

class DeviceStore {
 public:
  /// `capacity` is in fragments (the paper's "balls").
  explicit DeviceStore(Device device);

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] std::uint64_t used() const noexcept { return data_.size(); }

  /// Fragments stored for one volume (pool mode shares a store across
  /// volumes).  O(stored fragments).
  [[nodiscard]] std::uint64_t used_by_volume(std::uint32_t volume) const;
  [[nodiscard]] std::uint64_t capacity() const noexcept {
    return device_.capacity;
  }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Stores a fragment.  Throws std::runtime_error when the device is
  /// failed or full (and the key is new).
  void write(const FragmentKey& key, std::vector<std::uint8_t> payload);

  /// Reads a fragment; nullopt if absent or the device is failed.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> read(
      const FragmentKey& key) const;

  [[nodiscard]] bool contains(const FragmentKey& key) const;

  /// Removes a fragment if present; returns whether it existed.
  bool erase(const FragmentKey& key);

  /// All stored fragments (serialization/diagnostics).
  [[nodiscard]] const std::unordered_map<FragmentKey, std::vector<std::uint8_t>,
                                         FragmentKeyHash>&
  contents() const noexcept {
    return data_;
  }

  /// Changes the device's capacity (in fragments).  Throws
  /// std::invalid_argument on zero or on a capacity below the current
  /// occupancy -- callers drain fragments off before shrinking.
  void resize(std::uint64_t new_capacity);

  /// Simulates a crash: all stored data becomes unreadable.
  void fail() noexcept { failed_ = true; }

  /// Simulates silent data corruption (bit rot): flips a byte of the
  /// stored payload, or truncates an empty payload marker.  Returns whether
  /// the fragment existed.  Test/chaos hook.
  bool corrupt(const FragmentKey& key);

  /// Device replaced by a fresh, empty unit with the same uid.
  void replace() noexcept {
    failed_ = false;
    data_.clear();
  }

 private:
  Device device_;
  std::unordered_map<FragmentKey, std::vector<std::uint8_t>, FragmentKeyHash>
      data_;
  bool failed_ = false;
};

}  // namespace rds
