// VirtualDisk: the block-level storage virtualization of the paper's
// introduction -- a pool of heterogeneous devices presented as one device.
//
// Every logical block is encoded by a RedundancyScheme into k fragments,
// which a placement strategy (Redundant Share by default) maps to k distinct
// devices.  Growing, shrinking, or losing devices triggers a migration that
// moves only the fragments the placement diff says must move; lost fragments
// are rebuilt from the surviving ones through the scheme.
//
// Concurrency model (docs/api.md, "Concurrency guarantees"): block I/O and
// topology mutations are serialized by an internal mutex (`mu_`), so any
// number of threads may call them -- one at a time gets in.  Placement
// lookups (place(), placement_snapshot()) are lock-free and may run from any
// number of threads concurrently with that writer: they read an immutable
// PlacementEpoch published by shared_ptr-RCU, so every lookup sees one
// consistent (strategy, config) pair even in the middle of apply_config.
// The locking discipline is machine-checked: every mutable field is
// RDS_GUARDED_BY(mu_) and the build enforces -Werror=thread-safety under
// Clang (docs/static_analysis.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_config.hpp"
#include "src/core/result.hpp"
#include "src/metrics/registry.hpp"
#include "src/placement/strategy.hpp"
#include "src/placement/strategy_factory.hpp"  // PlacementKind (moved there)
#include "src/storage/device_store.hpp"
#include "src/storage/redundancy_scheme.hpp"
#include "src/util/mutex.hpp"
#include "src/util/rcu.hpp"
#include "src/util/thread_annotations.hpp"

namespace rds {

class Snapshot;

namespace journal {
class JournalSink;
struct Record;
}  // namespace journal

/// Immutable (strategy, config) pair concurrent readers place against.
/// Published atomically by VirtualDisk on every committed topology change;
/// a reader holding a snapshot keeps the whole pair alive, so placements
/// and config lookups within one snapshot are always mutually consistent
/// even while a swap is in flight.
struct PlacementEpoch {
  ClusterConfig config;
  std::shared_ptr<const ReplicationStrategy> strategy;
  std::uint64_t epoch = 0;  ///< install counter, strictly increasing
};

class VirtualDisk {
 public:
  struct Stats {
    std::uint64_t fragments_written = 0;
    std::uint64_t fragments_moved = 0;     ///< by migrations
    std::uint64_t bytes_moved = 0;
    std::uint64_t fragments_rebuilt = 0;   ///< reconstructed from peers
    std::uint64_t degraded_reads = 0;      ///< reads that needed decoding
                                           ///< around missing fragments
    std::uint64_t checksum_failures = 0;   ///< corrupt fragments detected
    std::uint64_t fragments_repaired = 0;  ///< restored by repair()
  };

  struct ScrubReport {
    std::uint64_t blocks_checked = 0;
    std::uint64_t unreadable_blocks = 0;    ///< fewer than min_fragments left
    std::uint64_t degraded_blocks = 0;      ///< readable, fragments missing
    std::uint64_t misplaced_fragments = 0;  ///< stored where placement
                                            ///< does not expect them
    [[nodiscard]] bool clean() const noexcept {
      return unreadable_blocks == 0 && degraded_blocks == 0 &&
             misplaced_fragments == 0;
    }
  };

  VirtualDisk(ClusterConfig config, std::shared_ptr<RedundancyScheme> scheme,
              PlacementKind kind = PlacementKind::kRedundantShare);

  /// Pool mode: the disk is one volume among several sharing the SAME
  /// device stores (capacity is contended across volumes).  `volume_id`
  /// namespaces this volume's fragments; `stores` must cover every device
  /// of `config`.  Normally constructed via StoragePool::create_volume.
  VirtualDisk(ClusterConfig config, std::shared_ptr<RedundancyScheme> scheme,
              PlacementKind kind, std::uint32_t volume_id,
              std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>>
                  stores);

  // --- Fallible operations, Result form (error taxonomy: docs/api.md) ---
  //
  // The try_* family is the primary interface: every failure comes back as
  // an (ErrorCode, message) pair instead of the historical mix of bools and
  // exception types.  The legacy names below each one are thin throwing
  // wrappers (value_or_throw) kept for existing call sites.

  /// Stores a logical block.  kInvalidArgument when the payload does not
  /// fit the fragment budget, kIoError when a device store rejects a
  /// fragment (full / crashed) -- in that case fragments written before the
  /// failure remain, exactly as the throwing path always behaved.
  [[nodiscard]] Result<void> try_write(std::uint64_t block,
                                       std::span<const std::uint8_t> data)
      RDS_EXCLUDES(mu_);

  /// Reads a block back, reconstructing around failed devices.  kNotFound
  /// for never-written blocks, kUnrecoverable when too few fragments
  /// survive.
  [[nodiscard]] Result<std::vector<std::uint8_t>> try_read(std::uint64_t block)
      RDS_EXCLUDES(mu_);

  /// Discards a block: removes its fragments from every device.  kNotFound
  /// when the block was never written.
  [[nodiscard]] Result<void> try_trim(std::uint64_t block) RDS_EXCLUDES(mu_);

  /// Stores a logical block (any length that fits the fragment budget).
  /// Throwing wrapper over try_write.
  void write(std::uint64_t block, std::span<const std::uint8_t> data)
      RDS_EXCLUDES(mu_);

  /// Reads a logical block back, reconstructing around failed devices.
  /// Throws std::out_of_range for never-written blocks, std::runtime_error
  /// when too many fragments are lost.  Throwing wrapper over try_read.
  [[nodiscard]] std::vector<std::uint8_t> read(std::uint64_t block)
      RDS_EXCLUDES(mu_);

  /// Discards a block: removes its fragments from every device.  Returns
  /// whether the block existed.  Wrapper over try_trim.
  bool trim(std::uint64_t block) RDS_EXCLUDES(mu_);

  [[nodiscard]] bool contains(std::uint64_t block) const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return blocks_.contains(block);
  }
  [[nodiscard]] std::uint64_t block_count() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return blocks_.size();
  }

  // --- Concurrent placement (lock-free reads, atomic strategy swap) ---

  /// The committed placement epoch: one wait-free shared_ptr load.  Safe
  /// from any thread at any time, including while apply_config / a reshape
  /// commit installs a successor.
  [[nodiscard]] std::shared_ptr<const PlacementEpoch> placement_snapshot()
      const noexcept;

  /// Places `block` under the current committed epoch (lock-free; safe
  /// concurrently with the serialized mutators).  Fills `out` (size == k)
  /// and returns the epoch id the placement came from.
  std::uint64_t place(std::uint64_t block, std::span<DeviceId> out) const;

  /// All k replica locations of one block, resolved against ONE epoch read.
  struct CopyLocations {
    std::uint64_t epoch = 0;        ///< the epoch the devices came from
    std::vector<DeviceId> devices;  ///< copies 0..k-1, pairwise distinct
  };

  /// The k copy locations of `block` -- the read path's view of the paper's
  /// copy-identification property.  One wait-free epoch load resolves both
  /// the replication degree and the placement, so the result is internally
  /// consistent even while a strategy/scheme swap is committing (lock-free,
  /// like place()).  Allocates the result vector; hot loops use
  /// try_copy_locations with a reused buffer.
  [[nodiscard]] CopyLocations copy_locations(std::uint64_t block) const;

  /// Allocation-free form: fills `out` with the k copy locations and
  /// returns the epoch id they came from.  kInvalidArgument when out.size()
  /// differs from the epoch's replication degree -- the mismatch a live
  /// set_scheme swap can produce between sizing the buffer and placing;
  /// callers re-size and retry (or size from the same placement_snapshot).
  [[nodiscard]] Result<std::uint64_t> try_copy_locations(
      std::uint64_t block, std::span<DeviceId> out) const;

  /// Migrates data to `next` (validate, reshape, drain) and atomically
  /// installs the new (strategy, config) epoch; concurrent place() calls
  /// see either the old pair or the new pair, never a mix.  Returns the
  /// number of blocks re-examined.  kReshapeInProgress if a reshape is in
  /// flight, kDeviceFailed if a failed device would remain in `next`,
  /// kInvalidArgument for configs the strategy rejects.
  [[nodiscard]] Result<std::size_t> apply_config(ClusterConfig next)
      RDS_EXCLUDES(mu_);

  /// Adds a device and migrates the fragments the new placement assigns
  /// it.  Result form + throwing wrapper.
  [[nodiscard]] Result<void> try_add_device(const Device& device)
      RDS_EXCLUDES(mu_);
  void add_device(const Device& device) RDS_EXCLUDES(mu_);

  /// Pool mode: adds a device backed by an existing (shared) store and
  /// migrates.  Used by StoragePool so every co-hosted volume sees the same
  /// physical device.
  void attach_device(const Device& device, std::shared_ptr<DeviceStore> store)
      RDS_EXCLUDES(mu_);

  /// Gracefully removes a healthy device, migrating its data away first.
  /// kNotFound for unknown uids, kInvalidArgument for failed devices (use
  /// rebuild()).  Result form + throwing wrapper.
  [[nodiscard]] Result<void> try_remove_device(DeviceId uid) RDS_EXCLUDES(mu_);
  void remove_device(DeviceId uid) RDS_EXCLUDES(mu_);

  /// Changes a device's capacity in place.  Growing extends the store and
  /// migrates fragments onto the new room; shrinking drains fragments off
  /// first, then clamps the store.  kNotFound for unknown uids,
  /// kDeviceFailed for failed devices, kInvalidArgument for capacities the
  /// configuration rejects.  Result form + throwing wrapper.
  [[nodiscard]] Result<void> try_resize_device(DeviceId uid,
                                               std::uint64_t new_capacity)
      RDS_EXCLUDES(mu_);
  void resize_device(DeviceId uid, std::uint64_t new_capacity)
      RDS_EXCLUDES(mu_);

  /// Swaps the placement strategy live: every block is re-placed under the
  /// new kind (same configuration), moving only the fragments whose homes
  /// differ.  No-op when `kind` is already active.  kReshapeInProgress if a
  /// reshape is in flight.  Result form + throwing wrapper.
  [[nodiscard]] Result<void> try_set_strategy(PlacementKind kind)
      RDS_EXCLUDES(mu_);
  void set_strategy(PlacementKind kind) RDS_EXCLUDES(mu_);

  /// Re-encodes every block under a new redundancy scheme (e.g. mirror ->
  /// RS).  All blocks are decoded up front -- if any is unreadable, nothing
  /// is mutated; a failure while re-writing reports how far it got.  No-op
  /// when `next` names the active scheme.  kDeviceFailed on degraded pools
  /// (rebuild() first), kInvalidArgument when the scheme needs more
  /// fragments than there are devices.  Result form + throwing wrapper.
  [[nodiscard]] Result<void> try_set_scheme(
      std::shared_ptr<RedundancyScheme> next) RDS_EXCLUDES(mu_);
  void set_scheme(std::shared_ptr<RedundancyScheme> next) RDS_EXCLUDES(mu_);

  /// Attaches a journal sink: every committed topology mutation is appended
  /// in commit order (docs/persistence.md).  The sink's own mutex is a leaf
  /// below this disk's lock.  Pass nullptr to detach.
  void set_journal(std::shared_ptr<journal::JournalSink> sink)
      RDS_EXCLUDES(mu_);

  /// Incremental reshaping: starts migrating toward `next` without blocking.
  /// Returns the number of blocks that still need re-placement.  While a
  /// reshape is in flight, reads and writes work normally (each block is
  /// served from wherever it currently lives); further topology operations
  /// are rejected until the reshape drains (kReshapeInProgress).  Result
  /// form + throwing wrapper.
  [[nodiscard]] Result<std::size_t> try_begin_reshape(ClusterConfig next)
      RDS_EXCLUDES(mu_);
  std::size_t begin_reshape(ClusterConfig next) RDS_EXCLUDES(mu_);

  /// Migrates up to `max_blocks` pending blocks; returns how many were
  /// processed.  A return of 0 means the reshape is complete (the new
  /// configuration is committed).
  std::size_t step_reshape(std::size_t max_blocks) RDS_EXCLUDES(mu_);

  [[nodiscard]] bool reshaping() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return next_strategy_ != nullptr;
  }
  [[nodiscard]] std::size_t reshape_pending() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return pending_.size();
  }

  /// Simulates a crash: the device's contents become unreadable.
  void fail_device(DeviceId uid) RDS_EXCLUDES(mu_);

  /// Chaos hook: silently corrupts the stored copy of one fragment (bit
  /// rot).  Returns whether the fragment existed.  Reads detect the damage
  /// via checksums and reconstruct; repair() restores the fragment.
  bool corrupt_fragment(std::uint64_t block, unsigned fragment)
      RDS_EXCLUDES(mu_);

  /// Drops all failed devices from the configuration and restores full
  /// redundancy (re-places fragments; lost ones are rebuilt from peers).
  /// Returns the number of fragments rebuilt.
  std::uint64_t rebuild() RDS_EXCLUDES(mu_);

  /// Verifies every block: decodable, fully redundant, fragments exactly
  /// where the placement function says, and checksums intact (corrupt
  /// fragments count as missing).
  [[nodiscard]] ScrubReport scrub() RDS_EXCLUDES(mu_);

  /// Restores full redundancy in place: re-creates missing or corrupt
  /// fragments on their assigned (healthy) devices from the surviving
  /// ones.  Unlike rebuild(), the configuration is unchanged.  Returns the
  /// number of fragments repaired; unrecoverable blocks are left alone.
  std::uint64_t repair() RDS_EXCLUDES(mu_);

  /// Owner-thread view of the stats.  The reference stays valid for the
  /// disk's lifetime; read it while no mutator runs concurrently.
  [[nodiscard]] const Stats& stats() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return stats_;
  }
  /// Committed configuration; same validity rule as stats().  Concurrent
  /// readers should use placement_snapshot()->config instead.
  [[nodiscard]] const ClusterConfig& config() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return config_;
  }
  /// Committed redundancy scheme; same validity rule as strategy() -- it
  /// can be swapped by set_scheme(), so concurrent readers must not cache
  /// the reference across mutations.
  [[nodiscard]] const RedundancyScheme& scheme() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return *scheme_;
  }
  /// Active placement kind (see set_strategy()).
  [[nodiscard]] PlacementKind placement_kind() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return kind_;
  }
  /// Committed strategy; concurrent readers should hold a
  /// placement_snapshot() instead (it pins the strategy's lifetime).
  [[nodiscard]] const ReplicationStrategy& strategy() const RDS_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return *strategy_;
  }
  [[nodiscard]] std::uint64_t used_on(DeviceId uid) const RDS_EXCLUDES(mu_);
  [[nodiscard]] std::uint32_t volume_id() const noexcept { return volume_id_; }

  /// Re-publishes the per-device load gauges
  /// (`rds_device_fragments{device=...}`) from the current store contents.
  /// The write path keeps them fresh incrementally; call this before a
  /// snapshot export to also reflect erase-only activity (trims, drains).
  void publish_device_gauges() const RDS_EXCLUDES(mu_);

  /// Ids of all blocks currently stored (for pool bookkeeping and volume
  /// teardown).
  [[nodiscard]] std::vector<std::uint64_t> block_ids() const RDS_EXCLUDES(mu_);

 private:
  friend class Snapshot;

  [[nodiscard]] std::unique_ptr<ReplicationStrategy> make_strategy(
      const ClusterConfig& config) const RDS_REQUIRES(mu_);

  /// Appends a record to the attached journal (no-op without one).  Runs
  /// after the in-memory mutation committed, under the same critical
  /// section, so journal order is commit order.  A failed append is
  /// surfaced (the journal is now behind the in-memory state) but does not
  /// roll the mutation back.
  [[nodiscard]] Result<void> journal_locked(const journal::Record& record)
      RDS_REQUIRES(mu_);

  // Locked bodies of the public operations above.  Public entry points take
  // `mu_` once and delegate here; internal call chains (add_device ->
  // apply_config -> begin_reshape -> step_reshape) stay on the *_locked
  // layer so the mutex is never taken recursively.
  [[nodiscard]] Result<void> write_locked(std::uint64_t block,
                                          std::span<const std::uint8_t> data)
      RDS_REQUIRES(mu_);
  [[nodiscard]] Result<std::vector<std::uint8_t>> read_locked(
      std::uint64_t block) RDS_REQUIRES(mu_);
  [[nodiscard]] Result<void> trim_locked(std::uint64_t block)
      RDS_REQUIRES(mu_);
  [[nodiscard]] Result<std::size_t> begin_reshape_locked(ClusterConfig next)
      RDS_REQUIRES(mu_);
  std::size_t step_reshape_locked(std::size_t max_blocks) RDS_REQUIRES(mu_);
  [[nodiscard]] Result<std::size_t> apply_config_locked(ClusterConfig next)
      RDS_REQUIRES(mu_);
  [[nodiscard]] bool reshaping_locked() const RDS_REQUIRES(mu_) {
    return next_strategy_ != nullptr;
  }

  /// Re-places every block under `next` and moves/rebuilds fragments
  /// (apply_config, throwing form).
  void migrate_to_locked(ClusterConfig next) RDS_REQUIRES(mu_);

  /// Copies the committed (config_, strategy_) pair into a fresh epoch and
  /// installs it with one atomic store.
  void publish_epoch() RDS_REQUIRES(mu_);

  /// The strategy that currently governs `block` (old placement while the
  /// block awaits reshaping, the target placement otherwise).
  [[nodiscard]] const ReplicationStrategy& strategy_for(
      std::uint64_t block) const RDS_REQUIRES(mu_);

  /// Moves one block's fragments from `strategy_` to `next_strategy_`.
  void reshape_block(std::uint64_t block) RDS_REQUIRES(mu_);

  /// Reads all currently reachable, checksum-valid fragments of a block;
  /// corrupt fragments count as missing (and bump the failure stat).
  [[nodiscard]] std::vector<std::optional<Bytes>> gather_fragments(
      std::uint64_t block, std::span<const DeviceId> locations)
      RDS_REQUIRES(mu_);

  /// Checksum over a fragment payload (placement-independent).
  [[nodiscard]] static std::uint64_t checksum(
      std::span<const std::uint8_t> payload) noexcept;

  /// Stores fragment j of `block` with its checksum recorded.
  void store_fragment(DeviceId target, std::uint64_t block, unsigned j,
                      Bytes payload) RDS_REQUIRES(mu_);

  /// Resolves the registry instruments (both constructors).
  void init_metrics();

  /// Updates `uid`'s load gauge from its store (no-op for unknown uids).
  void sync_device_gauge(DeviceId uid) const RDS_REQUIRES(mu_);

  /// Serializes block I/O and topology mutations; mutable so const
  /// observers (stats(), used_on(), ...) can take it.  place() and
  /// placement_snapshot() never touch it -- they read `published_`.
  mutable Mutex mu_;

  ClusterConfig config_ RDS_GUARDED_BY(mu_);
  std::shared_ptr<RedundancyScheme> scheme_ RDS_GUARDED_BY(mu_);
  PlacementKind kind_ RDS_GUARDED_BY(mu_);
  std::uint32_t volume_id_ = 0;
  std::shared_ptr<journal::JournalSink> journal_ RDS_GUARDED_BY(mu_);
  // Committed strategy, shared with the published epoch so concurrent
  // readers keep it alive across a swap.  `config_`/`strategy_` are the
  // mutator's view; `published_` is the RCU snapshot readers load.
  std::shared_ptr<const ReplicationStrategy> strategy_ RDS_GUARDED_BY(mu_);
  RcuCell<PlacementEpoch> published_;
  std::uint64_t epoch_counter_ RDS_GUARDED_BY(mu_) = 0;
  std::unordered_map<DeviceId, std::shared_ptr<DeviceStore>> stores_
      RDS_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::size_t> blocks_
      RDS_GUARDED_BY(mu_);  // block -> size
  std::unordered_map<FragmentKey, std::uint64_t, FragmentKeyHash> checksums_
      RDS_GUARDED_BY(mu_);
  Stats stats_ RDS_GUARDED_BY(mu_);

  // Registry-owned instruments (process lifetime; see docs/metrics.md).
  // Written once by init_metrics() before the disk is shared, internally
  // thread-safe: unguarded.
  metrics::Counter* reads_total_ = nullptr;
  metrics::Counter* writes_total_ = nullptr;
  metrics::Counter* read_bytes_total_ = nullptr;
  metrics::Counter* written_bytes_total_ = nullptr;
  metrics::Counter* degraded_reads_total_ = nullptr;
  metrics::Counter* checksum_failures_total_ = nullptr;
  metrics::Counter* fragments_moved_total_ = nullptr;
  metrics::Counter* migration_bytes_moved_total_ = nullptr;
  metrics::Counter* fragments_rebuilt_total_ = nullptr;
  metrics::Counter* fragments_repaired_total_ = nullptr;
  metrics::Counter* topology_events_total_ = nullptr;
  metrics::LatencyHistogram* placement_latency_ns_ = nullptr;
  metrics::LatencyHistogram* migration_step_latency_ns_ = nullptr;
  // Per-device load gauges, cached so the write path never touches the
  // registry mutex (mutable because the cache fills lazily from const
  // paths).
  mutable std::unordered_map<DeviceId, metrics::Gauge*> device_gauges_
      RDS_GUARDED_BY(mu_);

  // In-flight reshape state (empty/null when idle).
  ClusterConfig next_config_ RDS_GUARDED_BY(mu_);
  std::unique_ptr<ReplicationStrategy> next_strategy_ RDS_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> pending_
      RDS_GUARDED_BY(mu_);  // blocks still on `strategy_`
};

}  // namespace rds
