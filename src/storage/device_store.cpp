#include "src/storage/device_store.hpp"

#include <stdexcept>

#include "src/util/hash.hpp"

namespace rds {

std::size_t FragmentKeyHash::operator()(const FragmentKey& k) const noexcept {
  return static_cast<std::size_t>(hash2(
      k.block, (static_cast<std::uint64_t>(k.volume) << 32) | k.fragment));
}

DeviceStore::DeviceStore(Device device) : device_(std::move(device)) {}

void DeviceStore::write(const FragmentKey& key,
                        std::vector<std::uint8_t> payload) {
  if (failed_) {
    throw std::runtime_error("DeviceStore: write to failed device " +
                             device_.name);
  }
  const auto it = data_.find(key);
  if (it != data_.end()) {
    it->second = std::move(payload);  // overwrite in place
    return;
  }
  if (data_.size() >= device_.capacity) {
    throw std::runtime_error("DeviceStore: device full: " + device_.name);
  }
  data_.emplace(key, std::move(payload));
}

std::optional<std::vector<std::uint8_t>> DeviceStore::read(
    const FragmentKey& key) const {
  if (failed_) return std::nullopt;
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

bool DeviceStore::contains(const FragmentKey& key) const {
  return !failed_ && data_.contains(key);
}

bool DeviceStore::erase(const FragmentKey& key) { return data_.erase(key) > 0; }

std::uint64_t DeviceStore::used_by_volume(std::uint32_t volume) const {
  std::uint64_t count = 0;
  for (const auto& [key, payload] : data_) {
    if (key.volume == volume) ++count;
  }
  return count;
}

void DeviceStore::resize(std::uint64_t new_capacity) {
  if (new_capacity == 0) {
    throw std::invalid_argument("DeviceStore: zero capacity: " + device_.name);
  }
  if (new_capacity < data_.size()) {
    throw std::invalid_argument(
        "DeviceStore: cannot shrink " + device_.name + " below its " +
        std::to_string(data_.size()) + " stored fragments");
  }
  device_.capacity = new_capacity;
}

bool DeviceStore::corrupt(const FragmentKey& key) {
  const auto it = data_.find(key);
  if (it == data_.end()) return false;
  if (it->second.empty()) {
    it->second.push_back(0xEE);  // growth is also corruption
  } else {
    it->second[it->second.size() / 2] ^= 0x5A;
  }
  return true;
}

}  // namespace rds
