#include "src/storage/migration.hpp"

#include <stdexcept>

namespace rds {

MigrationPlan plan_migration(const ReplicationStrategy& before,
                             const ReplicationStrategy& after,
                             std::span<const std::uint64_t> blocks) {
  if (before.replication() != after.replication()) {
    throw std::invalid_argument("plan_migration: replication mismatch");
  }
  const unsigned k = before.replication();

  MigrationPlan plan;
  plan.total_fragments = blocks.size() * k;
  std::vector<DeviceId> old_loc(k), new_loc(k);
  for (const std::uint64_t block : blocks) {
    before.place(block, old_loc);
    after.place(block, new_loc);
    for (unsigned j = 0; j < k; ++j) {
      if (old_loc[j] == new_loc[j]) {
        ++plan.unchanged_fragments;
      } else {
        plan.moves.push_back({block, j, old_loc[j], new_loc[j]});
      }
    }
  }
  return plan;
}

}  // namespace rds
