#include "src/storage/migration.hpp"

#include <stdexcept>

#include "src/metrics/registry.hpp"

namespace rds {

MigrationPlan plan_migration(const ReplicationStrategy& before,
                             const ReplicationStrategy& after,
                             std::span<const std::uint64_t> blocks) {
  if (before.replication() != after.replication()) {
    throw std::invalid_argument("plan_migration: replication mismatch");
  }
  const unsigned k = before.replication();
  metrics::Registry& reg = metrics::Registry::global();
  static metrics::Counter& plans_total =
      reg.counter("rds_migration_plans_total");
  static metrics::Counter& planned_moves_total =
      reg.counter("rds_migration_planned_moves_total");
  static metrics::Counter& planned_fragments_total =
      reg.counter("rds_migration_planned_fragments_total");

  MigrationPlan plan;
  plan.total_fragments = blocks.size() * k;
  std::vector<DeviceId> old_loc(k), new_loc(k);
  for (const std::uint64_t block : blocks) {
    before.place(block, old_loc);
    after.place(block, new_loc);
    for (unsigned j = 0; j < k; ++j) {
      if (old_loc[j] == new_loc[j]) {
        ++plan.unchanged_fragments;
      } else {
        plan.moves.push_back({block, j, old_loc[j], new_loc[j]});
      }
    }
  }
  plans_total.inc();
  planned_moves_total.inc(plan.moves.size());
  planned_fragments_total.inc(plan.total_fragments);
  return plan;
}

}  // namespace rds
