// FileStore: a minimal named-object layer on top of VirtualDisk.
//
// What a downstream user of the virtualization actually touches: named
// byte streams of arbitrary length.  The store chops file contents into
// fixed-size logical blocks, allocates block addresses from a free list,
// and delegates redundancy + placement entirely to the VirtualDisk -- so
// files transparently survive device failures, migrations and pool
// reshapes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/storage/virtual_disk.hpp"

namespace rds {

struct FileInfo {
  std::string name;
  std::uint64_t size = 0;
  std::uint64_t blocks = 0;
};

class FileStore {
 public:
  /// The store takes ownership of the disk.  `block_size` is the logical
  /// block payload in bytes.
  FileStore(VirtualDisk disk, std::size_t block_size = 4096);

  /// Creates or replaces a file.
  void put(const std::string& name, std::span<const std::uint8_t> content);

  /// Reads a file back.  ok(nullopt) when the file does not exist; an
  /// error (kUnrecoverable, kIoError, ...) naming the failing block when a
  /// stored file cannot be reconstructed.
  [[nodiscard]] Result<std::optional<Bytes>> try_get(const std::string& name);

  /// Reads a file back; nullopt when absent.  Throwing wrapper over
  /// try_get (value_or_throw's exception mapping).
  [[nodiscard]] std::optional<Bytes> get(const std::string& name);

  /// Deletes a file, releasing its blocks.  Returns whether it existed.
  bool remove(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const {
    return files_.contains(name);
  }
  [[nodiscard]] std::vector<FileInfo> list() const;
  [[nodiscard]] std::size_t file_count() const noexcept {
    return files_.size();
  }
  [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }

  /// The underlying disk, for pool administration (add/remove/fail/rebuild).
  [[nodiscard]] VirtualDisk& disk() noexcept { return disk_; }
  [[nodiscard]] const VirtualDisk& disk() const noexcept { return disk_; }

  /// Attaches a journal sink to the store AND its disk: file mutations
  /// (put/remove, with content fingerprints) and the disk's topology
  /// mutations land in one commit-ordered journal (docs/persistence.md).
  /// Pass nullptr to detach both.
  void set_journal(std::shared_ptr<journal::JournalSink> sink);

 private:
  friend class Snapshot;
  struct FileEntry {
    std::vector<std::uint64_t> block_ids;
    std::uint64_t size = 0;
  };

  [[nodiscard]] std::uint64_t allocate_block();
  void release_blocks(const FileEntry& entry);

  /// Appends a record to the attached journal (no-op without one); throws
  /// std::runtime_error if the append fails after the mutation committed.
  void journal_append(const journal::Record& record);

  VirtualDisk disk_;
  std::size_t block_size_;
  std::map<std::string, FileEntry> files_;
  std::vector<std::uint64_t> free_blocks_;
  std::uint64_t next_block_ = 0;
  std::shared_ptr<journal::JournalSink> journal_;
};

}  // namespace rds
