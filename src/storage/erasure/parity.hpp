// Single XOR parity (the RAID-4/5 code): d data shards + 1 parity shard,
// tolerates one loss.  A special case of Reed-Solomon kept separate because
// it is branch-free and the natural baseline for the erasure benchmarks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rds {

/// Parity shard of equal-size data shards.  Throws on empty input or size
/// mismatch.
[[nodiscard]] std::vector<std::uint8_t> xor_parity(
    std::span<const std::vector<std::uint8_t>> data_shards);

/// Reconstructs the single missing shard (data or parity) of a d+1 group.
/// `shards` has d+1 entries, exactly one nullopt.  Throws if zero or more
/// than one shard is missing.
[[nodiscard]] std::vector<std::uint8_t> xor_reconstruct(
    std::span<const std::optional<std::vector<std::uint8_t>>> shards);

}  // namespace rds
