#include "src/storage/erasure/reed_solomon.hpp"

#include <stdexcept>

#include "src/storage/erasure/gf256.hpp"

namespace rds {
namespace {

/// Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.
/// `m` is row-major n x n.  Throws std::logic_error if singular (cannot
/// happen for [I; Cauchy] sub-matrices; kept as an internal invariant check).
std::vector<std::uint8_t> invert_matrix(std::vector<std::uint8_t> m,
                                        std::size_t n) {
  std::vector<std::uint8_t> inv(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) inv[i * n + i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot search.
    std::size_t pivot = col;
    while (pivot < n && m[pivot * n + col] == 0) ++pivot;
    if (pivot == n) throw std::logic_error("ReedSolomon: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m[pivot * n + j], m[col * n + j]);
        std::swap(inv[pivot * n + j], inv[col * n + j]);
      }
    }
    // Normalize the pivot row.
    const std::uint8_t c = gf256::inv(m[col * n + col]);
    gf256::scale({&m[col * n], n}, c);
    gf256::scale({&inv[col * n], n}, c);
    // Eliminate the column elsewhere.
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const std::uint8_t f = m[row * n + col];
      if (f == 0) continue;
      gf256::mul_add({&m[row * n], n}, {&m[col * n], n}, f);
      gf256::mul_add({&inv[row * n], n}, {&inv[col * n], n}, f);
    }
  }
  return inv;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned data_shards, unsigned parity_shards)
    : d_(data_shards), p_(parity_shards) {
  if (d_ == 0) throw std::invalid_argument("ReedSolomon: zero data shards");
  if (d_ + p_ > 256) {
    throw std::invalid_argument("ReedSolomon: more than 256 shards");
  }
}

std::vector<std::uint8_t> ReedSolomon::matrix_row(unsigned r) const {
  std::vector<std::uint8_t> row(d_, 0);
  if (r < d_) {
    row[r] = 1;  // systematic: data shards pass through
  } else {
    // Cauchy row: 1 / (x_r ^ y_c) with x = {d..d+p-1}, y = {0..d-1}.
    for (unsigned c = 0; c < d_; ++c) {
      row[c] = gf256::inv(static_cast<std::uint8_t>(r ^ c));
    }
  }
  return row;
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::uint8_t> block) const {
  const std::size_t shard_size = (block.size() + d_ - 1) / d_;
  std::vector<std::vector<std::uint8_t>> shards(
      total_shards(), std::vector<std::uint8_t>(shard_size, 0));

  for (unsigned c = 0; c < d_; ++c) {
    const std::size_t begin = static_cast<std::size_t>(c) * shard_size;
    const std::size_t end = std::min(block.size(), begin + shard_size);
    if (begin < end) {
      std::copy(block.begin() + static_cast<std::ptrdiff_t>(begin),
                block.begin() + static_cast<std::ptrdiff_t>(end),
                shards[c].begin());
    }
  }
  for (unsigned r = d_; r < total_shards(); ++r) {
    const std::vector<std::uint8_t> row = matrix_row(r);
    for (unsigned c = 0; c < d_; ++c) {
      gf256::mul_add(shards[r], shards[c], row[c]);
    }
  }
  return shards;
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::recover_data(
    std::span<const std::optional<std::vector<std::uint8_t>>> shards) const {
  if (shards.size() != total_shards()) {
    throw std::invalid_argument("ReedSolomon: wrong shard vector size");
  }
  std::vector<unsigned> present;
  std::size_t shard_size = 0;
  for (unsigned i = 0; i < total_shards() && present.size() < d_; ++i) {
    if (!shards[i].has_value()) continue;
    if (present.empty()) {
      shard_size = shards[i]->size();
    } else if (shards[i]->size() != shard_size) {
      throw std::invalid_argument("ReedSolomon: shard size mismatch");
    }
    present.push_back(i);
  }
  if (present.size() < d_) {
    throw std::invalid_argument("ReedSolomon: fewer than d shards present");
  }

  // Solve  M * data = present_shards  with M the d chosen encoding rows.
  std::vector<std::uint8_t> m(static_cast<std::size_t>(d_) * d_, 0);
  for (unsigned r = 0; r < d_; ++r) {
    const std::vector<std::uint8_t> row = matrix_row(present[r]);
    std::copy(row.begin(), row.end(), m.begin() + r * d_);
  }
  const std::vector<std::uint8_t> minv = invert_matrix(std::move(m), d_);

  std::vector<std::vector<std::uint8_t>> data(
      d_, std::vector<std::uint8_t>(shard_size, 0));
  for (unsigned c = 0; c < d_; ++c) {
    for (unsigned j = 0; j < d_; ++j) {
      gf256::mul_add(data[c], *shards[present[j]],
                     minv[static_cast<std::size_t>(c) * d_ + j]);
    }
  }
  return data;
}

std::vector<std::uint8_t> ReedSolomon::decode(
    std::span<const std::optional<std::vector<std::uint8_t>>> shards,
    std::size_t block_size) const {
  const std::vector<std::vector<std::uint8_t>> data = recover_data(shards);
  const std::size_t shard_size = data.front().size();
  if (block_size > shard_size * d_) {
    throw std::invalid_argument("ReedSolomon: block size exceeds capacity");
  }
  std::vector<std::uint8_t> block;
  block.reserve(block_size);
  for (unsigned c = 0; c < d_ && block.size() < block_size; ++c) {
    const std::size_t take = std::min(shard_size, block_size - block.size());
    block.insert(block.end(), data[c].begin(),
                 data[c].begin() + static_cast<std::ptrdiff_t>(take));
  }
  return block;
}

std::vector<std::uint8_t> ReedSolomon::reconstruct_shard(
    std::span<const std::optional<std::vector<std::uint8_t>>> shards,
    unsigned target) const {
  if (target >= total_shards()) {
    throw std::invalid_argument("ReedSolomon: bad target shard");
  }
  const std::vector<std::vector<std::uint8_t>> data = recover_data(shards);
  if (target < d_) return data[target];
  std::vector<std::uint8_t> shard(data.front().size(), 0);
  const std::vector<std::uint8_t> row = matrix_row(target);
  for (unsigned c = 0; c < d_; ++c) {
    gf256::mul_add(shard, data[c], row[c]);
  }
  return shard;
}

}  // namespace rds
