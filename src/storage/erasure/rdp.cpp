#include "src/storage/erasure/rdp.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace rds {
namespace {

void xor_into(Bytes& dst, const Bytes& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

bool is_odd_prime(unsigned p) {
  if (p < 3 || p % 2 == 0) return false;
  for (unsigned d = 3; d * d <= p; d += 2) {
    if (p % d == 0) return false;
  }
  return true;
}

/// Peeling solver for XOR equation systems where every equation touches at
/// most two unknowns: repeatedly apply an equation with exactly one
/// remaining unknown.  For RDP's row/diagonal system with p prime, peeling
/// always completes (the chase argument of the FAST'04 paper).
class XorPeeler {
 public:
  explicit XorPeeler(std::size_t unknown_count)
      : values_(unknown_count), solved_(unknown_count, false),
        eqs_of_(unknown_count) {}

  void add_equation(std::vector<std::size_t> unknowns, Bytes rhs) {
    const std::size_t id = equations_.size();
    for (const std::size_t u : unknowns) eqs_of_[u].push_back(id);
    equations_.push_back({std::move(unknowns), std::move(rhs)});
    if (equations_.back().unknowns.size() == 1) ready_.push_back(id);
  }

  /// Returns true iff every unknown was determined.
  bool solve() {
    while (!ready_.empty()) {
      const std::size_t id = ready_.front();
      ready_.pop_front();
      Equation& eq = equations_[id];
      if (eq.unknowns.empty()) continue;  // became trivial meanwhile
      const std::size_t u = eq.unknowns.front();
      if (solved_[u]) continue;
      values_[u] = eq.rhs;
      solved_[u] = true;
      // Substitute into every equation mentioning u.
      for (const std::size_t other : eqs_of_[u]) {
        Equation& oe = equations_[other];
        const auto it = std::ranges::find(oe.unknowns, u);
        if (it == oe.unknowns.end()) continue;
        oe.unknowns.erase(it);
        xor_into(oe.rhs, values_[u]);
        if (oe.unknowns.size() == 1) ready_.push_back(other);
      }
    }
    return std::ranges::find(solved_, false) == solved_.end();
  }

  [[nodiscard]] const Bytes& value(std::size_t u) const { return values_[u]; }

 private:
  struct Equation {
    std::vector<std::size_t> unknowns;
    Bytes rhs;
  };
  std::vector<Equation> equations_;
  std::vector<Bytes> values_;
  std::vector<bool> solved_;
  std::vector<std::vector<std::size_t>> eqs_of_;
  std::deque<std::size_t> ready_;
};

}  // namespace

RdpScheme::RdpScheme(unsigned p) : p_(p) {
  if (!is_odd_prime(p)) {
    throw std::invalid_argument("RdpScheme: p must be an odd prime");
  }
}

std::vector<Bytes> RdpScheme::encode(
    std::span<const std::uint8_t> block) const {
  const unsigned p = p_;
  const unsigned rows = p - 1;
  const unsigned data_cols = p - 1;
  const std::size_t chunk =
      (block.size() + static_cast<std::size_t>(data_cols) * rows - 1) /
      (static_cast<std::size_t>(data_cols) * rows);

  std::vector<std::vector<Bytes>> grid(
      p + 1, std::vector<Bytes>(rows, Bytes(chunk, 0)));
  for (unsigned j = 0; j < data_cols; ++j) {
    for (unsigned i = 0; i < rows; ++i) {
      const std::size_t begin =
          (static_cast<std::size_t>(j) * rows + i) * chunk;
      const std::size_t end = std::min(block.size(), begin + chunk);
      if (begin < end) {
        std::copy(block.begin() + static_cast<std::ptrdiff_t>(begin),
                  block.begin() + static_cast<std::ptrdiff_t>(end),
                  grid[j][i].begin());
      }
    }
  }
  // Row parity (column p-1) over the data columns.
  for (unsigned i = 0; i < rows; ++i) {
    for (unsigned j = 0; j < data_cols; ++j) {
      xor_into(grid[p - 1][i], grid[j][i]);
    }
  }
  // Diagonal parity (column p) over data + row parity; diagonal d covers
  // cells (r, j) with (r + j) mod p == d, imaginary row p-1 = 0; the
  // diagonal p-1 is not stored.
  for (unsigned d = 0; d < rows; ++d) {
    for (unsigned j = 0; j < p; ++j) {
      const unsigned r = (d + p - j % p) % p;
      if (r < rows) xor_into(grid[p][d], grid[j][r]);
    }
  }

  std::vector<Bytes> fragments(p + 1);
  for (unsigned j = 0; j < p + 1; ++j) {
    fragments[j].reserve(rows * chunk);
    for (unsigned i = 0; i < rows; ++i) {
      fragments[j].insert(fragments[j].end(), grid[j][i].begin(),
                          grid[j][i].end());
    }
  }
  return fragments;
}

std::vector<std::vector<Bytes>> RdpScheme::recover(
    std::span<const std::optional<Bytes>> fragments) const {
  const unsigned p = p_;
  const unsigned rows = p - 1;
  if (fragments.size() != p + 1) {
    throw std::invalid_argument("RdpScheme: wrong fragment count");
  }
  std::vector<unsigned> missing;
  std::size_t frag_size = 0;
  bool have_size = false;
  for (unsigned j = 0; j < p + 1; ++j) {
    if (!fragments[j]) {
      missing.push_back(j);
      continue;
    }
    if (!have_size) {
      frag_size = fragments[j]->size();
      have_size = true;
    } else if (fragments[j]->size() != frag_size) {
      throw std::invalid_argument("RdpScheme: fragment size mismatch");
    }
  }
  if (missing.size() > 2) {
    throw std::invalid_argument("RdpScheme: more than two fragments missing");
  }
  if (!have_size) {
    throw std::invalid_argument("RdpScheme: all fragments missing");
  }
  if (frag_size % rows != 0) {
    throw std::invalid_argument(
        "RdpScheme: fragment size not a multiple of p-1");
  }
  const std::size_t chunk = frag_size / rows;

  std::vector<std::vector<Bytes>> grid(
      p + 1, std::vector<Bytes>(rows, Bytes(chunk, 0)));
  for (unsigned j = 0; j < p + 1; ++j) {
    if (!fragments[j]) continue;
    for (unsigned i = 0; i < rows; ++i) {
      std::copy(fragments[j]->begin() + static_cast<std::ptrdiff_t>(i * chunk),
                fragments[j]->begin() +
                    static_cast<std::ptrdiff_t>((i + 1) * chunk),
                grid[j][i].begin());
    }
  }

  const auto recompute_row_parity = [&] {
    for (unsigned i = 0; i < rows; ++i) {
      grid[p - 1][i].assign(chunk, 0);
      for (unsigned j = 0; j + 1 < p; ++j) xor_into(grid[p - 1][i], grid[j][i]);
    }
  };
  const auto recompute_diag_parity = [&] {
    for (unsigned d = 0; d < rows; ++d) {
      grid[p][d].assign(chunk, 0);
      for (unsigned j = 0; j < p; ++j) {
        const unsigned r = (d + p - j % p) % p;
        if (r < rows) xor_into(grid[p][d], grid[j][r]);
      }
    }
  };
  const auto recover_by_rows = [&](unsigned e) {  // e < p-1 (a data column)
    for (unsigned i = 0; i < rows; ++i) {
      grid[e][i] = grid[p - 1][i];
      for (unsigned j = 0; j + 1 < p; ++j) {
        if (j != e) xor_into(grid[e][i], grid[j][i]);
      }
    }
  };

  if (missing.empty()) return grid;

  const bool diag_missing = missing.back() == p;
  if (diag_missing) {
    // Repair the other column (if any) inside the RAID-4 set, then rebuild
    // the diagonal parity from scratch.
    if (missing.size() == 2) {
      if (missing[0] == p - 1) {
        recompute_row_parity();
      } else {
        recover_by_rows(missing[0]);
      }
    }
    recompute_diag_parity();
    return grid;
  }

  if (missing.size() == 1) {
    if (missing[0] == p - 1) {
      recompute_row_parity();
    } else {
      recover_by_rows(missing[0]);
    }
    return grid;
  }

  // Two columns within [0, p-1] (data and/or row parity): peel the
  // row/diagonal XOR system.  Unknown id = row * 2 + (0 for e1, 1 for e2).
  const unsigned e1 = missing[0];
  const unsigned e2 = missing[1];
  XorPeeler peeler(2 * rows);

  // Row equations: XOR over all columns [0, p-1] of row r is zero.
  for (unsigned r = 0; r < rows; ++r) {
    Bytes rhs(chunk, 0);
    for (unsigned j = 0; j < p; ++j) {
      if (j != e1 && j != e2) xor_into(rhs, grid[j][r]);
    }
    peeler.add_equation({2 * r, 2 * r + 1}, std::move(rhs));
  }
  // Diagonal equations d in [0, p-2]: XOR of the diagonal's cells equals
  // the stored parity; unknowns are the diagonal's cells in e1/e2 when
  // their row is real.
  for (unsigned d = 0; d < rows; ++d) {
    Bytes rhs = grid[p][d];
    std::vector<std::size_t> unknowns;
    for (unsigned j = 0; j < p; ++j) {
      const unsigned r = (d + p - j % p) % p;
      if (r >= rows) continue;  // imaginary row: zero
      if (j == e1) {
        unknowns.push_back(2 * r);
      } else if (j == e2) {
        unknowns.push_back(2 * r + 1);
      } else {
        xor_into(rhs, grid[j][r]);
      }
    }
    peeler.add_equation(std::move(unknowns), std::move(rhs));
  }
  if (!peeler.solve()) {
    throw std::logic_error("RdpScheme: peeling failed (p not prime?)");
  }
  for (unsigned r = 0; r < rows; ++r) {
    grid[e1][r] = peeler.value(2 * r);
    grid[e2][r] = peeler.value(2 * r + 1);
  }
  return grid;
}

Bytes RdpScheme::decode(std::span<const std::optional<Bytes>> fragments,
                        std::size_t block_size) const {
  const std::vector<std::vector<Bytes>> grid = recover(fragments);
  const unsigned rows = p_ - 1;
  Bytes block;
  block.reserve(block_size);
  for (unsigned j = 0; j + 1 < p_ && block.size() < block_size; ++j) {
    for (unsigned i = 0; i < rows && block.size() < block_size; ++i) {
      const std::size_t take =
          std::min(grid[j][i].size(), block_size - block.size());
      block.insert(block.end(), grid[j][i].begin(),
                   grid[j][i].begin() + static_cast<std::ptrdiff_t>(take));
    }
  }
  if (block.size() < block_size) {
    throw std::invalid_argument("RdpScheme: block size exceeds capacity");
  }
  return block;
}

Bytes RdpScheme::reconstruct_fragment(
    std::span<const std::optional<Bytes>> fragments, unsigned target) const {
  if (target >= p_ + 1) {
    throw std::invalid_argument("RdpScheme: bad target fragment");
  }
  const std::vector<std::vector<Bytes>> grid = recover(fragments);
  Bytes fragment;
  for (const Bytes& chunk : grid[target]) {
    fragment.insert(fragment.end(), chunk.begin(), chunk.end());
  }
  return fragment;
}

std::string RdpScheme::name() const {
  return "rdp(p=" + std::to_string(p_) + ")";
}

}  // namespace rds
