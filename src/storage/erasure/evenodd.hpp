// EVENODD (Blaum, Brady, Bruck, Menon 1995) -- the paper's reference [1]:
// an MDS code tolerating any two column erasures using only XOR.
//
// Layout for a prime p: a (p-1) x (p+2) symbol array.  Columns 0..p-1 carry
// data, column p row parity, column p+1 diagonal parity.  With an imaginary
// all-zero row p-1 and the special diagonal sum
//     S = XOR_{t=1..p-1} a[p-1-t][t],
// the parities are
//     a[i][p]   = XOR_j a[i][j]
//     a[i][p+1] = S ^ XOR_{(r+j) mod p == i} a[r][j].
// Any two lost columns are recovered by the zigzag chase through rows and
// diagonals (each alternating equation has exactly one unknown).
//
// Here a "symbol" is a byte chunk: a block is split into p columns of p-1
// chunks each.  Fragment j of the RedundancyScheme is column j -- which is
// why the placement layer's copy identification matters: the two parity
// columns are not interchangeable with data columns.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/storage/redundancy_scheme.hpp"

namespace rds {

class EvenOddScheme final : public RedundancyScheme {
 public:
  /// `p` must be an odd prime (3, 5, 7, ...).  Fragments: p data + 2 parity.
  explicit EvenOddScheme(unsigned p);

  [[nodiscard]] unsigned fragment_count() const override { return p_ + 2; }
  [[nodiscard]] unsigned min_fragments() const override { return p_; }
  [[nodiscard]] std::vector<Bytes> encode(
      std::span<const std::uint8_t> block) const override;
  [[nodiscard]] Bytes decode(std::span<const std::optional<Bytes>> fragments,
                             std::size_t block_size) const override;
  [[nodiscard]] Bytes reconstruct_fragment(
      std::span<const std::optional<Bytes>> fragments,
      unsigned target) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned prime() const noexcept { return p_; }

 private:
  /// Recovers all p+2 columns from fragments with <= 2 missing.  Columns
  /// are returned as symbol grids: col[j] has p-1 chunks of `chunk` bytes.
  [[nodiscard]] std::vector<std::vector<Bytes>> recover(
      std::span<const std::optional<Bytes>> fragments) const;

  unsigned p_;
};

}  // namespace rds
