// Systematic Reed-Solomon erasure code over GF(2^8) with a Cauchy encoding
// matrix: d data shards + p parity shards, any d of the d+p shards
// reconstruct the data.  d + p <= 256.
//
// This is the erasure substrate the paper points at in Section 3 ("if data
// is distributed according to an erasure code, each sub-block has a
// different meaning"): shard index == copy index from Redundant Share.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rds {

class ReedSolomon {
 public:
  /// Throws std::invalid_argument unless 1 <= d, 0 <= p, d + p <= 256.
  ReedSolomon(unsigned data_shards, unsigned parity_shards);

  [[nodiscard]] unsigned data_shards() const noexcept { return d_; }
  [[nodiscard]] unsigned parity_shards() const noexcept { return p_; }
  [[nodiscard]] unsigned total_shards() const noexcept { return d_ + p_; }

  /// Splits `block` into d data shards (zero-padded to a multiple of d) and
  /// appends p parity shards.  Result: d+p shards of equal size.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::uint8_t> block) const;

  /// Reconstructs the original block from any >= d present shards.
  /// `shards[i]` is shard i or nullopt if lost; all present shards must have
  /// equal size.  `block_size` trims the zero padding.  Throws
  /// std::invalid_argument on fewer than d shards or size mismatches.
  [[nodiscard]] std::vector<std::uint8_t> decode(
      std::span<const std::optional<std::vector<std::uint8_t>>> shards,
      std::size_t block_size) const;

  /// Reconstructs a *single* missing shard (what a rebuild after one device
  /// failure needs) without materializing the whole block.
  [[nodiscard]] std::vector<std::uint8_t> reconstruct_shard(
      std::span<const std::optional<std::vector<std::uint8_t>>> shards,
      unsigned target) const;

 private:
  /// Row `r` of the (d+p) x d encoding matrix (identity on top, Cauchy
  /// below): shard r = sum_c row[c] * data[c].
  [[nodiscard]] std::vector<std::uint8_t> matrix_row(unsigned r) const;

  /// Recovers all d data shards from >= d present shards.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> recover_data(
      std::span<const std::optional<std::vector<std::uint8_t>>> shards) const;

  unsigned d_;
  unsigned p_;
};

}  // namespace rds
