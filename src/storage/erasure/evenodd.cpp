#include "src/storage/erasure/evenodd.hpp"

#include <algorithm>
#include <stdexcept>

namespace rds {
namespace {

void xor_into(Bytes& dst, const Bytes& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

bool is_odd_prime(unsigned p) {
  if (p < 3 || p % 2 == 0) return false;
  for (unsigned d = 3; d * d <= p; d += 2) {
    if (p % d == 0) return false;
  }
  return true;
}

}  // namespace

EvenOddScheme::EvenOddScheme(unsigned p) : p_(p) {
  if (!is_odd_prime(p)) {
    throw std::invalid_argument("EvenOddScheme: p must be an odd prime");
  }
}

std::vector<Bytes> EvenOddScheme::encode(
    std::span<const std::uint8_t> block) const {
  const unsigned p = p_;
  const unsigned rows = p - 1;
  const std::size_t chunk =
      (block.size() + static_cast<std::size_t>(p) * rows - 1) /
      (static_cast<std::size_t>(p) * rows);

  // grid[j][i] = symbol a[i][j]; data columns hold the block column-major.
  std::vector<std::vector<Bytes>> grid(
      p + 2, std::vector<Bytes>(rows, Bytes(chunk, 0)));
  for (unsigned j = 0; j < p; ++j) {
    for (unsigned i = 0; i < rows; ++i) {
      const std::size_t begin =
          (static_cast<std::size_t>(j) * rows + i) * chunk;
      const std::size_t end = std::min(block.size(), begin + chunk);
      if (begin < end) {
        std::copy(block.begin() + static_cast<std::ptrdiff_t>(begin),
                  block.begin() + static_cast<std::ptrdiff_t>(end),
                  grid[j][i].begin());
      }
    }
  }

  // Row parity.
  for (unsigned i = 0; i < rows; ++i) {
    for (unsigned j = 0; j < p; ++j) xor_into(grid[p][i], grid[j][i]);
  }
  // Special diagonal sum S = XOR_{t=1..p-1} a[p-1-t][t].
  Bytes s(chunk, 0);
  for (unsigned t = 1; t < p; ++t) xor_into(s, grid[t][p - 1 - t]);
  // Diagonal parity: a[i][p+1] = S ^ XOR_{(r+j) mod p == i, r <= p-2}.
  for (unsigned i = 0; i < rows; ++i) {
    grid[p + 1][i] = s;
    for (unsigned j = 0; j < p; ++j) {
      const unsigned r = (i + p - j % p) % p;
      if (r < rows) xor_into(grid[p + 1][i], grid[j][r]);
    }
  }

  // Serialize columns.
  std::vector<Bytes> fragments(p + 2);
  for (unsigned j = 0; j < p + 2; ++j) {
    fragments[j].reserve(rows * chunk);
    for (unsigned i = 0; i < rows; ++i) {
      fragments[j].insert(fragments[j].end(), grid[j][i].begin(),
                          grid[j][i].end());
    }
  }
  return fragments;
}

std::vector<std::vector<Bytes>> EvenOddScheme::recover(
    std::span<const std::optional<Bytes>> fragments) const {
  const unsigned p = p_;
  const unsigned rows = p - 1;
  if (fragments.size() != p + 2) {
    throw std::invalid_argument("EvenOddScheme: wrong fragment count");
  }
  std::vector<unsigned> missing;
  std::size_t frag_size = 0;
  bool have_size = false;
  for (unsigned j = 0; j < p + 2; ++j) {
    if (!fragments[j]) {
      missing.push_back(j);
      continue;
    }
    if (!have_size) {
      frag_size = fragments[j]->size();
      have_size = true;
    } else if (fragments[j]->size() != frag_size) {
      throw std::invalid_argument("EvenOddScheme: fragment size mismatch");
    }
  }
  if (missing.size() > 2) {
    throw std::invalid_argument(
        "EvenOddScheme: more than two fragments missing");
  }
  if (!have_size) {
    throw std::invalid_argument("EvenOddScheme: all fragments missing");
  }
  if (frag_size % rows != 0) {
    throw std::invalid_argument("EvenOddScheme: fragment size not a multiple "
                                "of p-1");
  }
  const std::size_t chunk = frag_size / rows;

  std::vector<std::vector<Bytes>> grid(
      p + 2, std::vector<Bytes>(rows, Bytes(chunk, 0)));
  for (unsigned j = 0; j < p + 2; ++j) {
    if (!fragments[j]) continue;
    for (unsigned i = 0; i < rows; ++i) {
      std::copy(fragments[j]->begin() + static_cast<std::ptrdiff_t>(i * chunk),
                fragments[j]->begin() +
                    static_cast<std::ptrdiff_t>((i + 1) * chunk),
                grid[j][i].begin());
    }
  }

  const auto recompute_row_parity = [&] {
    for (unsigned i = 0; i < rows; ++i) {
      grid[p][i].assign(chunk, 0);
      for (unsigned j = 0; j < p; ++j) xor_into(grid[p][i], grid[j][i]);
    }
  };
  const auto special_diagonal_sum = [&] {
    Bytes s(chunk, 0);
    for (unsigned t = 1; t < p; ++t) xor_into(s, grid[t][p - 1 - t]);
    return s;
  };
  const auto recompute_diag_parity = [&] {
    const Bytes s = special_diagonal_sum();
    for (unsigned i = 0; i < rows; ++i) {
      grid[p + 1][i] = s;
      for (unsigned j = 0; j < p; ++j) {
        const unsigned r = (i + p - j % p) % p;
        if (r < rows) xor_into(grid[p + 1][i], grid[j][r]);
      }
    }
  };
  // Recovers data column e from the row parity (all other data present).
  const auto recover_by_rows = [&](unsigned e) {
    for (unsigned i = 0; i < rows; ++i) {
      grid[e][i] = grid[p][i];
      for (unsigned j = 0; j < p; ++j) {
        if (j != e) xor_into(grid[e][i], grid[j][i]);
      }
    }
  };

  if (missing.empty()) return grid;

  if (missing.size() == 1) {
    const unsigned m = missing[0];
    if (m == p) {
      recompute_row_parity();
    } else if (m == p + 1) {
      recompute_diag_parity();
    } else {
      recover_by_rows(m);
    }
    return grid;
  }

  const unsigned m1 = missing[0];
  const unsigned m2 = missing[1];

  if (m1 == p && m2 == p + 1) {
    // Both parity columns: recompute from intact data.
    recompute_row_parity();
    recompute_diag_parity();
    return grid;
  }

  if (m2 == p + 1) {
    // One data column + the diagonal parity: rows first, then diagonals.
    recover_by_rows(m1);
    recompute_diag_parity();
    return grid;
  }

  if (m2 == p) {
    // One data column e + the row parity: recover e through the diagonals.
    const unsigned e = m1;
    // S from a diagonal with no unknown symbol in column e.
    Bytes s(chunk, 0);
    if (e == 0) {
      // The S-diagonal's column-0 slot is the imaginary row: direct sum.
      for (unsigned t = 1; t < p; ++t) xor_into(s, grid[t][p - 1 - t]);
    } else {
      const unsigned d = e - 1;  // diagonal whose column-e slot is imaginary
      s = grid[p + 1][d];
      for (unsigned j = 0; j < p; ++j) {
        if (j == e) continue;
        const unsigned r = (d + p - j % p) % p;
        if (r < rows) xor_into(s, grid[j][r]);
      }
    }
    for (unsigned r = 0; r < rows; ++r) {
      const unsigned d = (r + e) % p;
      Bytes v = s;
      if (d < rows) xor_into(v, grid[p + 1][d]);
      // d == p-1 is the S-diagonal itself (no stored parity symbol).
      for (unsigned j = 0; j < p; ++j) {
        if (j == e) continue;
        const unsigned rr = (d + p - j % p) % p;
        if (rr < rows) xor_into(v, grid[j][rr]);
      }
      grid[e][r] = std::move(v);
    }
    recompute_row_parity();
    return grid;
  }

  // Two data columns e1 < e2: the EVENODD zigzag.
  const unsigned e1 = m1;
  const unsigned e2 = m2;

  // S = XOR of the whole row-parity column ^ XOR of the whole diagonal
  // parity column (the p-1 copies of S cancel pairwise since p-1 is even).
  Bytes s(chunk, 0);
  for (unsigned i = 0; i < rows; ++i) {
    xor_into(s, grid[p][i]);
    xor_into(s, grid[p + 1][i]);
  }

  // Diagonal residuals D[d] = a[(d-e1) mod p][e1] ^ a[(d-e2) mod p][e2].
  std::vector<Bytes> diag(p, Bytes(chunk, 0));
  for (unsigned d = 0; d < p; ++d) {
    diag[d] = s;
    if (d < rows) xor_into(diag[d], grid[p + 1][d]);
    for (unsigned j = 0; j < p; ++j) {
      if (j == e1 || j == e2) continue;
      const unsigned r = (d + p - j % p) % p;
      if (r < rows) xor_into(diag[d], grid[j][r]);
    }
  }
  // Row residuals R[i] = a[i][e1] ^ a[i][e2].
  std::vector<Bytes> row_res(rows, Bytes(chunk, 0));
  for (unsigned i = 0; i < rows; ++i) {
    row_res[i] = grid[p][i];
    for (unsigned j = 0; j < p; ++j) {
      if (j != e1 && j != e2) xor_into(row_res[i], grid[j][i]);
    }
  }

  // Zigzag chase starting from the imaginary slot of column e1.
  Bytes carry(chunk, 0);  // the already-known e1 symbol on the diagonal
  unsigned row = (p - 1 + e1 + p - e2) % p;
  while (row != p - 1) {
    const unsigned d = (row + e2) % p;
    grid[e2][row] = diag[d];
    xor_into(grid[e2][row], carry);
    grid[e1][row] = row_res[row];
    xor_into(grid[e1][row], grid[e2][row]);
    carry = grid[e1][row];
    row = (row + e1 + p - e2) % p;
  }
  return grid;
}

Bytes EvenOddScheme::decode(std::span<const std::optional<Bytes>> fragments,
                            std::size_t block_size) const {
  const std::vector<std::vector<Bytes>> grid = recover(fragments);
  const unsigned rows = p_ - 1;
  Bytes block;
  block.reserve(block_size);
  for (unsigned j = 0; j < p_ && block.size() < block_size; ++j) {
    for (unsigned i = 0; i < rows && block.size() < block_size; ++i) {
      const std::size_t take =
          std::min(grid[j][i].size(), block_size - block.size());
      block.insert(block.end(), grid[j][i].begin(),
                   grid[j][i].begin() + static_cast<std::ptrdiff_t>(take));
    }
  }
  if (block.size() < block_size) {
    throw std::invalid_argument("EvenOddScheme: block size exceeds capacity");
  }
  return block;
}

Bytes EvenOddScheme::reconstruct_fragment(
    std::span<const std::optional<Bytes>> fragments, unsigned target) const {
  if (target >= p_ + 2) {
    throw std::invalid_argument("EvenOddScheme: bad target fragment");
  }
  const std::vector<std::vector<Bytes>> grid = recover(fragments);
  Bytes fragment;
  for (const Bytes& chunk : grid[target]) {
    fragment.insert(fragment.end(), chunk.begin(), chunk.end());
  }
  return fragment;
}

std::string EvenOddScheme::name() const {
  return "evenodd(p=" + std::to_string(p_) + ")";
}

}  // namespace rds
