// Arithmetic in GF(2^8) with the AES-adjacent polynomial x^8+x^4+x^3+x^2+1
// (0x11d), via log/exp tables.  Substrate for the Reed-Solomon codec.
#pragma once

#include <cstdint>
#include <span>

namespace rds::gf256 {

/// Addition and subtraction coincide: bytewise XOR.
[[nodiscard]] constexpr std::uint8_t add(std::uint8_t a,
                                         std::uint8_t b) noexcept {
  return a ^ b;
}

/// Product in GF(2^8).
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;

/// Quotient a / b.  Precondition: b != 0 (asserted in debug builds;
/// returns 0 in release as a defined fallback).
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept;

/// Multiplicative inverse.  Precondition: a != 0.
[[nodiscard]] std::uint8_t inv(std::uint8_t a) noexcept;

/// a^e with a in the field and e a non-negative integer exponent.
[[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned e) noexcept;

/// dst[i] ^= c * src[i] for all i -- the row operation of both the encoder
/// and the Gaussian elimination.  Spans must have equal length.
void mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
             std::uint8_t c) noexcept;

/// dst[i] = c * dst[i].
void scale(std::span<std::uint8_t> dst, std::uint8_t c) noexcept;

}  // namespace rds::gf256
