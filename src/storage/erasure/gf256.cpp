#include "src/storage/erasure/gf256.hpp"

#include <array>
#include <cassert>

namespace rds::gf256 {
namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod in mul

  constexpr Tables() {
    // Generator 2 of GF(2^8)/0x11d.
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // undefined; callers must not rely on it
  }
};

constexpr Tables kT{};

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return kT.exp[static_cast<unsigned>(kT.log[a]) + kT.log[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) noexcept {
  assert(b != 0 && "gf256::div by zero");
  if (a == 0 || b == 0) return 0;
  return kT.exp[static_cast<unsigned>(kT.log[a]) + 255 - kT.log[b]];
}

std::uint8_t inv(std::uint8_t a) noexcept {
  assert(a != 0 && "gf256::inv of zero");
  if (a == 0) return 0;
  return kT.exp[255 - kT.log[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned l = (static_cast<unsigned>(kT.log[a]) * e) % 255;
  return kT.exp[l];
}

void mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
             std::uint8_t c) noexcept {
  assert(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const unsigned lc = kT.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= kT.exp[lc + kT.log[s]];
  }
}

void scale(std::span<std::uint8_t> dst, std::uint8_t c) noexcept {
  if (c == 1) return;
  for (std::uint8_t& v : dst) v = mul(v, c);
}

}  // namespace rds::gf256
