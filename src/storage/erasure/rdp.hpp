// Row-Diagonal Parity (Corbett et al., FAST 2004) -- the paper's reference
// [3]: the second classical XOR-only double-erasure code.
//
// Layout for a prime p: a (p-1) x (p+1) symbol array.  Columns 0..p-2 carry
// data, column p-1 row parity (over the data), column p diagonal parity.
// Diagonals run through the data AND the row-parity column ((r + j) mod p
// for j in [0, p-1]), with an imaginary all-zero row p-1; the diagonal
// p-1 is "missing" (not stored).  Because the diagonals cover the row
// parity, any two column losses are recoverable by alternately applying
// row and diagonal equations; we solve that system with a peeling solver
// (repeatedly apply any equation with exactly one unknown), which is the
// textbook chase without its easy-to-get-wrong direction bookkeeping.
//
// Fragment j of the RedundancyScheme is column j; p-1 data fragments + 2
// parity fragments, any p-1 of p+1 reconstruct.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/storage/redundancy_scheme.hpp"

namespace rds {

class RdpScheme final : public RedundancyScheme {
 public:
  /// `p` must be an odd prime; the code has p-1 data + 2 parity fragments.
  explicit RdpScheme(unsigned p);

  [[nodiscard]] unsigned fragment_count() const override { return p_ + 1; }
  [[nodiscard]] unsigned min_fragments() const override { return p_ - 1; }
  [[nodiscard]] std::vector<Bytes> encode(
      std::span<const std::uint8_t> block) const override;
  [[nodiscard]] Bytes decode(std::span<const std::optional<Bytes>> fragments,
                             std::size_t block_size) const override;
  [[nodiscard]] Bytes reconstruct_fragment(
      std::span<const std::optional<Bytes>> fragments,
      unsigned target) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] unsigned prime() const noexcept { return p_; }

 private:
  /// Recovers all p+1 columns (as symbol grids: col[j][row]) from
  /// fragments with <= 2 missing.
  [[nodiscard]] std::vector<std::vector<Bytes>> recover(
      std::span<const std::optional<Bytes>> fragments) const;

  unsigned p_;
};

}  // namespace rds
