#include "src/storage/erasure/parity.hpp"

#include <stdexcept>

namespace rds {

std::vector<std::uint8_t> xor_parity(
    std::span<const std::vector<std::uint8_t>> data_shards) {
  if (data_shards.empty()) {
    throw std::invalid_argument("xor_parity: no shards");
  }
  std::vector<std::uint8_t> parity(data_shards.front().size(), 0);
  for (const std::vector<std::uint8_t>& s : data_shards) {
    if (s.size() != parity.size()) {
      throw std::invalid_argument("xor_parity: shard size mismatch");
    }
    for (std::size_t i = 0; i < s.size(); ++i) parity[i] ^= s[i];
  }
  return parity;
}

std::vector<std::uint8_t> xor_reconstruct(
    std::span<const std::optional<std::vector<std::uint8_t>>> shards) {
  std::size_t missing = 0;
  std::size_t size = 0;
  for (const auto& s : shards) {
    if (!s) {
      ++missing;
    } else {
      size = s->size();
    }
  }
  if (missing != 1) {
    throw std::invalid_argument("xor_reconstruct: need exactly one missing");
  }
  std::vector<std::uint8_t> out(size, 0);
  for (const auto& s : shards) {
    if (!s) continue;
    if (s->size() != size) {
      throw std::invalid_argument("xor_reconstruct: shard size mismatch");
    }
    for (std::size_t i = 0; i < size; ++i) out[i] ^= (*s)[i];
  }
  return out;
}

}  // namespace rds
