#include "src/storage/redundancy_scheme.hpp"

#include <stdexcept>

namespace rds {

MirroringScheme::MirroringScheme(unsigned k) : k_(k) {
  if (k == 0) throw std::invalid_argument("MirroringScheme: k == 0");
}

std::vector<Bytes> MirroringScheme::encode(
    std::span<const std::uint8_t> block) const {
  return std::vector<Bytes>(k_, Bytes(block.begin(), block.end()));
}

Bytes MirroringScheme::decode(std::span<const std::optional<Bytes>> fragments,
                              std::size_t block_size) const {
  if (fragments.size() != k_) {
    throw std::invalid_argument("MirroringScheme: wrong fragment count");
  }
  for (const auto& f : fragments) {
    if (f) {
      if (f->size() < block_size) {
        throw std::invalid_argument("MirroringScheme: truncated fragment");
      }
      return Bytes(f->begin(),
                   f->begin() + static_cast<std::ptrdiff_t>(block_size));
    }
  }
  throw std::invalid_argument("MirroringScheme: all copies lost");
}

Bytes MirroringScheme::reconstruct_fragment(
    std::span<const std::optional<Bytes>> fragments, unsigned target) const {
  if (target >= k_) {
    throw std::invalid_argument("MirroringScheme: bad target");
  }
  for (const auto& f : fragments) {
    if (f) return *f;
  }
  throw std::invalid_argument("MirroringScheme: all copies lost");
}

std::string MirroringScheme::name() const {
  return "mirror(k=" + std::to_string(k_) + ")";
}

ReedSolomonScheme::ReedSolomonScheme(unsigned data_shards,
                                     unsigned parity_shards)
    : rs_(data_shards, parity_shards) {}

std::vector<Bytes> ReedSolomonScheme::encode(
    std::span<const std::uint8_t> block) const {
  return rs_.encode(block);
}

Bytes ReedSolomonScheme::decode(std::span<const std::optional<Bytes>> fragments,
                                std::size_t block_size) const {
  return rs_.decode(fragments, block_size);
}

Bytes ReedSolomonScheme::reconstruct_fragment(
    std::span<const std::optional<Bytes>> fragments, unsigned target) const {
  return rs_.reconstruct_shard(fragments, target);
}

std::string ReedSolomonScheme::name() const {
  return "reed-solomon(" + std::to_string(rs_.data_shards()) + "+" +
         std::to_string(rs_.parity_shards()) + ")";
}

}  // namespace rds
