// Redundancy schemes: how one logical block becomes k placed fragments.
//
// The paper stresses that Redundant Share "is always able to clearly
// identify the i-th of k copies" -- this interface is where that matters:
// fragment i of a block is whatever the scheme says fragment i is (an
// identical mirror copy, or a specific erasure-code shard), and placement
// copy index i stores exactly fragment i.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/storage/erasure/reed_solomon.hpp"

namespace rds {

using Bytes = std::vector<std::uint8_t>;

class RedundancyScheme {
 public:
  virtual ~RedundancyScheme() = default;

  /// Number of fragments per block (the placement degree k).
  [[nodiscard]] virtual unsigned fragment_count() const = 0;

  /// Minimum number of fragments needed to reconstruct a block.
  [[nodiscard]] virtual unsigned min_fragments() const = 0;

  /// Splits/encodes a block into fragment_count() fragments.
  [[nodiscard]] virtual std::vector<Bytes> encode(
      std::span<const std::uint8_t> block) const = 0;

  /// Reconstructs the block from >= min_fragments() present fragments
  /// (indexed by fragment number; nullopt = lost).  `block_size` is the
  /// original block length.  Throws std::invalid_argument if too few
  /// fragments are present.
  [[nodiscard]] virtual Bytes decode(
      std::span<const std::optional<Bytes>> fragments,
      std::size_t block_size) const = 0;

  /// Recomputes one lost fragment from the present ones (rebuild path).
  [[nodiscard]] virtual Bytes reconstruct_fragment(
      std::span<const std::optional<Bytes>> fragments,
      unsigned target) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// k identical copies; any single copy reconstructs the block.
class MirroringScheme final : public RedundancyScheme {
 public:
  explicit MirroringScheme(unsigned k);

  [[nodiscard]] unsigned fragment_count() const override { return k_; }
  [[nodiscard]] unsigned min_fragments() const override { return 1; }
  [[nodiscard]] std::vector<Bytes> encode(
      std::span<const std::uint8_t> block) const override;
  [[nodiscard]] Bytes decode(std::span<const std::optional<Bytes>> fragments,
                             std::size_t block_size) const override;
  [[nodiscard]] Bytes reconstruct_fragment(
      std::span<const std::optional<Bytes>> fragments,
      unsigned target) const override;
  [[nodiscard]] std::string name() const override;

 private:
  unsigned k_;
};

/// Reed-Solomon d+p: k = d+p fragments, any d reconstruct.
class ReedSolomonScheme final : public RedundancyScheme {
 public:
  ReedSolomonScheme(unsigned data_shards, unsigned parity_shards);

  [[nodiscard]] unsigned fragment_count() const override {
    return rs_.total_shards();
  }
  [[nodiscard]] unsigned min_fragments() const override {
    return rs_.data_shards();
  }
  [[nodiscard]] std::vector<Bytes> encode(
      std::span<const std::uint8_t> block) const override;
  [[nodiscard]] Bytes decode(std::span<const std::optional<Bytes>> fragments,
                             std::size_t block_size) const override;
  [[nodiscard]] Bytes reconstruct_fragment(
      std::span<const std::optional<Bytes>> fragments,
      unsigned target) const override;
  [[nodiscard]] std::string name() const override;

 private:
  ReedSolomon rs_;
};

}  // namespace rds
