#include "src/storage/file_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/journal/journal.hpp"
#include "src/journal/record.hpp"

namespace rds {

FileStore::FileStore(VirtualDisk disk, std::size_t block_size)
    : disk_(std::move(disk)), block_size_(block_size) {
  if (block_size_ == 0) {
    throw std::invalid_argument("FileStore: zero block size");
  }
}

std::uint64_t FileStore::allocate_block() {
  if (!free_blocks_.empty()) {
    const std::uint64_t id = free_blocks_.back();
    free_blocks_.pop_back();
    return id;
  }
  return next_block_++;
}

void FileStore::release_blocks(const FileEntry& entry) {
  for (const std::uint64_t id : entry.block_ids) disk_.trim(id);
  free_blocks_.insert(free_blocks_.end(), entry.block_ids.begin(),
                      entry.block_ids.end());
}

void FileStore::put(const std::string& name,
                    std::span<const std::uint8_t> content) {
  // Replace semantics: free the old blocks after the new content is in
  // place so a failed write cannot orphan the previous version's metadata.
  FileEntry entry;
  entry.size = content.size();
  const std::uint64_t blocks =
      (content.size() + block_size_ - 1) / block_size_;
  entry.block_ids.reserve(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t id = allocate_block();
    const std::size_t begin = static_cast<std::size_t>(b) * block_size_;
    const std::size_t end =
        std::min(content.size(), begin + block_size_);
    disk_.write(id, content.subspan(begin, end - begin));
    entry.block_ids.push_back(id);
  }

  const auto old = files_.find(name);
  if (old != files_.end()) {
    release_blocks(old->second);
    old->second = std::move(entry);
  } else {
    files_.emplace(name, std::move(entry));
  }
  journal_append(journal::make_file_put(name, content));
}

Result<std::optional<Bytes>> FileStore::try_get(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return std::optional<Bytes>{};
  Bytes content;
  content.reserve(it->second.size);
  for (const std::uint64_t id : it->second.block_ids) {
    Result<Bytes> block = disk_.try_read(id);
    if (!block.ok()) {
      return Error{block.code(), "FileStore: '" + name + "' block " +
                                     std::to_string(id) + ": " +
                                     block.error().message};
    }
    content.insert(content.end(), block.value().begin(), block.value().end());
  }
  content.resize(it->second.size);
  return std::optional<Bytes>{std::move(content)};
}

std::optional<Bytes> FileStore::get(const std::string& name) {
  return try_get(name).value_or_throw();
}

bool FileStore::remove(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) return false;
  release_blocks(it->second);
  files_.erase(it);
  journal_append(journal::make_file_remove(name));
  return true;
}

void FileStore::set_journal(std::shared_ptr<journal::JournalSink> sink) {
  journal_ = sink;
  disk_.set_journal(std::move(sink));
}

void FileStore::journal_append(const journal::Record& record) {
  if (!journal_) return;
  const Result<journal::Lsn> appended = journal_->append(record);
  if (!appended.ok()) {
    throw std::runtime_error(
        "FileStore: operation committed in memory but journaling failed; "
        "snapshot and rotate the journal before further mutations: " +
        appended.error().message);
  }
}

std::vector<FileInfo> FileStore::list() const {
  std::vector<FileInfo> out;
  out.reserve(files_.size());
  for (const auto& [name, entry] : files_) {
    out.push_back({name, entry.size, entry.block_ids.size()});
  }
  return out;
}

}  // namespace rds
