// Figure 1 reproduction: the trivial replication strategy on the 3-bin
// system {2, 1, 1} with k = 2.
//
// Paper: P(big bin missed by both draws) = (1 - 1/2) * (1 - 2/3) = 1/6, so
// the trivial strategy wastes 1/6 of the biggest bin's capacity and 1/12 of
// the system's.  An optimal (and Redundant Share's) assignment places the
// first copy of EVERY ball on the big bin.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/trivial_replication.hpp"
#include "src/sim/block_map.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

void run(const ReplicationStrategy& strategy, const ClusterConfig& config,
         const std::string& label) {
  constexpr std::uint64_t kBalls = 500'000;
  const BlockMap map(strategy, kBalls);

  const DeviceId big = config[0].uid;
  const double big_load =
      static_cast<double>(map.count_on(big)) / static_cast<double>(kBalls);
  // Fair/optimal load of the big bin: 2 * (2/4) = 1 copy per ball.
  const double waste_big = 1.0 - big_load;
  const double waste_total = waste_big * 0.5;  // big bin is half the system

  std::cout << cell(label, 24) << cell(big_load, 14, 4)
            << cell(waste_big, 14, 4) << cell(waste_total, 14, 4) << '\n';
}

}  // namespace

int main() {
  header("Figure 1: trivial replication wastes capacity on {2,1,1}, k=2");
  std::cout << "paper: P(big bin missed) = 1/2 * 1/3 = 1/6 = 0.1667 -> big-bin"
            << " load 5/6,\n       waste 1/6 of the big bin = 1/12 = 0.0833 of"
            << " total capacity\n\n";

  const ClusterConfig config = cluster_of({2, 1, 1});
  std::cout << cell("strategy", 24) << cell("big-bin load", 14)
            << cell("waste(big)", 14) << cell("waste(total)", 14) << '\n';

  run(TrivialReplication(config, 2, TrivialBackend::kExactRace), config,
      "trivial(exact-race)");
  run(TrivialReplication(config, 2, TrivialBackend::kRingWalk), config,
      "trivial(ring-walk)");
  run(RedundantShare(config, 2), config, "redundant-share");

  std::cout << "\nexpected: trivial rows show ~0.8333 / ~0.1667 / ~0.0833;"
            << " redundant-share shows 1.0 / 0.0 / 0.0\n";
  return 0;
}
