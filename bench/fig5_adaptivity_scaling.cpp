// Figure 5 reproduction: adaptivity of k-replication for k = 4 over
// homogeneous bins, as the number of bins grows (n = 4..60).
//
// Paper: adding the new bin as the *biggest* gives a nearly constant
// replaced/used factor; adding it as the *smallest* degrades as n grows
// (the smallest bin's weight enters every other bin's probability), yet
// stays far below the k^2 = 16 bound of Lemma 3.5.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace rds;
  using namespace rds::bench;

  header("Figure 5: adaptivity of k-replication, k = 4, homogeneous bins");
  std::cout << "paper: add-as-biggest ~constant; add-as-smallest grows with n"
            << " but stays well below the k^2 = 16 bound\n\n";

  constexpr unsigned kK = 4;
  constexpr std::uint64_t kBalls = 60'000;

  std::cout << cell("bins", 8) << cell("add-biggest", 14)
            << cell("add-smallest", 14) << cell("opt-ratio big", 14)
            << cell("opt-ratio small", 16) << '\n';

  for (std::size_t n = 4; n <= 60; n += 4) {
    const ClusterConfig base = homogeneous_cluster(n, 200'000);
    double factor[2] = {0.0, 0.0};
    double competitive[2] = {0.0, 0.0};
    const EditKind kinds[2] = {EditKind::kAddBiggest, EditKind::kAddSmallest};
    for (int c = 0; c < 2; ++c) {
      const EditResult edit =
          apply_edit(base, kinds[c], 1000, c == 0 ? 100'000 : 50'000);
      const RedundantShare sb(base, kK);
      const RedundantShare sa(edit.config, kK);
      const BlockMap mb(sb, kBalls);
      const BlockMap ma(sa, kBalls);
      const MovementReport report = diff_placements(mb, ma);
      factor[c] = replaced_per_used(report, mb, ma, edit.affected);
      competitive[c] = report.competitive_set();
    }
    std::cout << cell(static_cast<std::uint64_t>(n), 8)
              << cell(factor[0], 14, 3) << cell(factor[1], 14, 3)
              << cell(competitive[0], 14, 3) << cell(competitive[1], 16, 3)
              << '\n';
  }
  return 0;
}
