// Placement-latency microbenchmarks (Section 3 prose: LinMirror /
// k-replication run in O(n); Section 3.3 trades memory for speed: O(k log n)
// in FastRedundantShare, O(k) alias lookups in PrecomputedRedundantShare).
//
// Measures ns/placement across cluster sizes and replication degrees for
// Redundant Share, both Section 3.3 variants, and the single-copy
// substrates, plus strategy (re)construction cost -- the other side of the
// O(k) trade (tables are rebuilt per committed topology change).  The
// bm_factory_* rows construct through make_replication_strategy, i.e. the
// exact path VirtualDisk::apply_config takes; the perf ratchet's headline
// speedup check (precomputed vs redundant-share, docs/benchmarks.md) reads
// those rows.
#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>
#include <vector>

#include "bench/perf_main.hpp"
#include "src/core/fast_redundant_share.hpp"
#include "src/core/precomputed_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/batch_placer.hpp"
#include "src/placement/consistent_hashing.hpp"
#include "src/placement/rendezvous.hpp"
#include "src/placement/share.hpp"
#include "src/placement/sieve.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/placement/trivial_replication.hpp"
#include "src/placement/weighted_dht.hpp"
#include "src/util/random.hpp"

namespace {

using namespace rds;

ClusterConfig make_cluster(std::size_t n) {
  Xoshiro256 rng(n * 1234567);
  std::vector<Device> devices;
  devices.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    devices.push_back({i, 500 + rng.next_below(2000), ""});
  }
  return ClusterConfig(std::move(devices));
}

template <typename Strategy>
void bm_replicated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const ClusterConfig config = make_cluster(n);
  const Strategy strategy(config, k);
  std::vector<DeviceId> out(k);
  std::uint64_t address = 0;
  for (auto _ : state) {
    strategy.place(address++, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Strategy>
void bm_single(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ClusterConfig config = make_cluster(n);
  const Strategy strategy(config);
  std::uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.place(address++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Factory-path placement: the strategy is built by make_replication_strategy
// exactly as VirtualDisk::apply_config / rds_cli do, so these rows measure
// what a live system actually serves (virtual dispatch included).
void bm_factory_replicated(benchmark::State& state, PlacementKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const ClusterConfig config = make_cluster(n);
  const std::unique_ptr<ReplicationStrategy> strategy =
      make_replication_strategy(kind, config, k);
  std::vector<DeviceId> out(k);
  std::uint64_t address = 0;
  for (auto _ : state) {
    strategy->place(address++, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// place_many through the factory product: the batch entry point BatchPlacer
// chunks feed (amortized span check, no per-address virtual dispatch).
void bm_factory_place_many(benchmark::State& state, PlacementKind kind) {
  constexpr std::size_t kBatch = 4096;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const ClusterConfig config = make_cluster(n);
  const std::unique_ptr<ReplicationStrategy> strategy =
      make_replication_strategy(kind, config, k);
  std::vector<std::uint64_t> addresses(kBatch);
  std::iota(addresses.begin(), addresses.end(), std::uint64_t{0});
  std::vector<DeviceId> out(kBatch * k);
  for (auto _ : state) {
    strategy->place_many(addresses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}

template <typename Strategy>
void bm_construction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const ClusterConfig config = make_cluster(n);
  for (auto _ : state) {
    const Strategy strategy(config, k);
    benchmark::DoNotOptimize(&strategy);
  }
}

// Batch placement through the BatchPlacer worker pool: one 64k-address
// batch per iteration, swept over the pool size.  Throughput (items/s)
// against the threads=1 row is the multithreaded speedup; on a single
// hardware core the rows collapse to the same rate minus hand-off overhead.
template <typename Strategy>
void bm_batch_place(benchmark::State& state) {
  constexpr std::size_t kBatch = 65536;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  const auto threads = static_cast<unsigned>(state.range(2));
  const ClusterConfig config = make_cluster(n);
  const Strategy strategy(config, k);
  BatchPlacer placer(threads);
  std::vector<std::uint64_t> addresses(kBatch);
  std::iota(addresses.begin(), addresses.end(), std::uint64_t{0});
  std::vector<DeviceId> out(kBatch * k);
  for (auto _ : state) {
    placer.place(strategy, addresses, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}

void replicated_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : {10, 100, 1000}) {
    for (const std::int64_t k : {2, 4}) {
      b->Args({n, k});
    }
  }
}

void batch_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t threads : {1, 2, 4, 8}) {
    b->Args({1000, 2, threads});
  }
  b->UseRealTime();  // wall clock: the pool's threads do the work
}

}  // namespace

BENCHMARK_TEMPLATE(bm_replicated, RedundantShare)->Apply(replicated_args);
BENCHMARK_TEMPLATE(bm_replicated, FastRedundantShare)->Apply(replicated_args);
BENCHMARK_TEMPLATE(bm_replicated, PrecomputedRedundantShare)
    ->Apply(replicated_args);
BENCHMARK_TEMPLATE(bm_replicated, TrivialReplication)->Apply(replicated_args);

BENCHMARK_TEMPLATE(bm_single, WeightedRendezvous)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000);
BENCHMARK_TEMPLATE(bm_single, ConsistentHashing)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(bm_single, Share)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(bm_single, Sieve)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK_TEMPLATE(bm_single, WeightedDht)->Arg(10)->Arg(100)->Arg(1000);

BENCHMARK_TEMPLATE(bm_batch_place, FastRedundantShare)->Apply(batch_args);
BENCHMARK_TEMPLATE(bm_batch_place, PrecomputedRedundantShare)
    ->Apply(batch_args);
BENCHMARK_TEMPLATE(bm_batch_place, RedundantShare)->Args({1000, 2, 4})
    ->UseRealTime();

// The ratchet's headline pair: exact law through the factory at the
// ROADMAP reference point n=1000, k=4 (plus the other kinds for context).
BENCHMARK_CAPTURE(bm_factory_replicated, redundant_share,
                  PlacementKind::kRedundantShare)
    ->Args({1000, 4});
BENCHMARK_CAPTURE(bm_factory_replicated, fast_redundant_share,
                  PlacementKind::kFastRedundantShare)
    ->Args({1000, 4});
BENCHMARK_CAPTURE(bm_factory_replicated, precomputed,
                  PlacementKind::kPrecomputed)
    ->Args({1000, 4});
BENCHMARK_CAPTURE(bm_factory_place_many, redundant_share,
                  PlacementKind::kRedundantShare)
    ->Args({1000, 4});
BENCHMARK_CAPTURE(bm_factory_place_many, fast_redundant_share,
                  PlacementKind::kFastRedundantShare)
    ->Args({1000, 4});
BENCHMARK_CAPTURE(bm_factory_place_many, precomputed,
                  PlacementKind::kPrecomputed)
    ->Args({1000, 4});

// Construction cost is the price of the O(k) lookups: O(k n) tables for
// the fast variant vs O(k n^2) alias slots for the precomputed one.  Swept
// over n so the trade-off of Section 3.3 is visible in one JSON.
BENCHMARK_TEMPLATE(bm_construction, RedundantShare)
    ->Args({100, 4})
    ->Args({1000, 4});
BENCHMARK_TEMPLATE(bm_construction, FastRedundantShare)
    ->Args({100, 4})
    ->Args({1000, 4});
BENCHMARK_TEMPLATE(bm_construction, PrecomputedRedundantShare)
    ->Args({100, 4})
    ->Args({1000, 4});

int main(int argc, char** argv) { return rds::bench::perf_main(argc, argv); }
