// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster_config.hpp"

namespace rds::bench {

inline void header(const std::string& title) {
  std::cout << '\n'
            << "==== " << title << " ====" << '\n';
}

inline void subheader(const std::string& title) {
  std::cout << "-- " << title << '\n';
}

/// Fixed-width cell helpers.
inline std::string cell(const std::string& s, int w = 14) {
  std::string out = s;
  if (static_cast<int>(out.size()) < w) {
    out.insert(0, static_cast<std::size_t>(w) - out.size(), ' ');
  }
  return out;
}

inline std::string cell(double v, int w = 14, int prec = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return cell(os.str(), w);
}

inline std::string cell(std::uint64_t v, int w = 14) {
  return cell(std::to_string(v), w);
}

/// Cluster built from a capacity list, uids 0..n-1 (descending not
/// required; ClusterConfig canonicalizes).
inline ClusterConfig cluster_of(const std::vector<std::uint64_t>& caps) {
  std::vector<Device> devices;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    devices.push_back({i, caps[i], "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

}  // namespace rds::bench
