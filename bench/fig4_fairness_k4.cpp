// Figure 4 reproduction: k-replication fairness for k = 4 across the same
// five-phase disk evolution as Figure 2.  Paper: "all tests resulted in
// completely fair distributions".
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/fairness_report.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace rds;
  using namespace rds::bench;

  header("Figure 4: distribution fairness for heterogeneous bins, k = 4");
  std::cout << "paper: every phase shows all disks filled to the same height"
            << " (perfectly fair)\n";

  constexpr unsigned kK = 4;
  constexpr double kFill = 0.60;

  std::unique_ptr<ReplicationStrategy> previous;
  std::uint64_t previous_balls = 0;
  for (const ScenarioPhase& phase : paper_figure2_phases()) {
    auto strategy = make_replication_strategy(PlacementKind::kRedundantShare,
                                              phase.config, kK);
    const std::vector<double> adjusted =
        usable_capacities(*strategy, phase.config);
    double usable = 0.0;
    for (const double c : adjusted) usable += c;
    const auto balls = static_cast<std::uint64_t>(kFill * usable / kK);
    const BlockMap map(*strategy, balls);
    const FairnessReport report =
        fairness_report(phase.config, adjusted, map);
    report.print(std::cout,
                 phase.label + "  (" + std::to_string(balls) + " blocks)");
    if (previous) {
      const std::uint64_t common = std::min(previous_balls, balls);
      const MovementReport moved = diff_placements(
          BlockMap(*previous, common), BlockMap(*strategy, common));
      std::cout << "  transition moved " << std::fixed
                << std::setprecision(1) << 100.0 * moved.moved_set_fraction()
                << "% of copies (theoretical minimum "
                << 100.0 * static_cast<double>(moved.optimal_moves) /
                       static_cast<double>(moved.total_copies)
                << "%)\n";
    }
    previous = std::move(strategy);
    previous_balls = balls;
  }
  std::cout << "\nexpected: fill% equal across disks within each phase\n";
  return 0;
}
