// Extension experiment: declustered rebuild time.
//
// When a device dies, Redundant Share's hash placement scatters its blocks'
// surviving peers across the WHOLE pool, so the rebuild reads fan out to
// every device and the new writes fan out to every device -- rebuild speed
// scales with the pool, not with one spare.  This bench models rebuild time
// as max over devices of (bytes read + bytes written) / bandwidth, using
// the real migration plan, and compares pool sizes and redundancy schemes.
// The contrast is classic RAID, where the rebuild bottlenecks on a single
// spare disk.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

constexpr double kDeviceMBps = 100.0;   // per-device rebuild bandwidth
constexpr double kBlockMB = 1.0;        // 1 MB per fragment, for intuition

/// Rebuild-time model after losing the biggest device: every fragment that
/// lived there is re-created on its new home (write) from one surviving
/// peer fragment (read).  Both ends are busy for the fragment's size.
double rebuild_hours(std::size_t n_devices, unsigned k,
                     std::uint64_t balls) {
  const ClusterConfig before = homogeneous_cluster(n_devices, 1'000'000);
  const EditResult edit = apply_edit(before, EditKind::kRemoveBiggest, 0, 0);

  const RedundantShare sb(before, k);
  const RedundantShare sa(edit.config, k);
  const BlockMap mb(sb, balls);
  const BlockMap ma(sa, balls);

  std::map<DeviceId, double> busy_mb;
  for (std::uint64_t ball = 0; ball < balls; ++ball) {
    const auto cb = mb.copies(ball);
    const auto ca = ma.copies(ball);
    for (unsigned j = 0; j < k; ++j) {
      if (cb[j] == ca[j]) continue;
      // Fragment j moved (its old home died or the re-placement shifted):
      // one surviving peer is read, the new home is written.
      busy_mb[ca[j]] += kBlockMB;                  // write
      const DeviceId peer = cb[(j + 1) % k];       // any surviving copy
      if (peer != edit.affected) busy_mb[peer] += kBlockMB;  // read
    }
  }
  double worst = 0.0;
  for (const auto& [uid, mb_busy] : busy_mb) worst = std::max(worst, mb_busy);
  return worst / kDeviceMBps / 3600.0;
}

}  // namespace

int main() {
  header("Extension: declustered rebuild time after losing one device");
  std::cout << "model: 100 MB/s per device, 1 MB fragments, 40k blocks;"
            << " rebuild time =\nmax per-device (read+write) bytes /"
            << " bandwidth.  A dedicated-spare RAID would\nfunnel the whole"
            << " failed disk through ONE device.\n\n";

  constexpr std::uint64_t kBalls = 40'000;
  std::cout << cell("devices", 10) << cell("k=2 hours", 12)
            << cell("k=3 hours", 12) << cell("raid-spare hours", 18) << '\n';
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    // Dedicated spare: the dead device's whole contents written to one disk.
    const double dead_mb =
        2.0 * kBalls / static_cast<double>(n) * kBlockMB;
    std::cout << cell(static_cast<std::uint64_t>(n), 10)
              << cell(rebuild_hours(n, 2, kBalls), 12, 3)
              << cell(rebuild_hours(n, 3, kBalls), 12, 3)
              << cell(dead_mb / kDeviceMBps / 3600.0, 18, 3) << '\n';
  }
  std::cout << "\nexpected: declustered rebuild time shrinks as the pool"
            << " grows (the work spreads);\nthe dedicated spare's time"
            << " shrinks only with the dead disk's share\n";
  return 0;
}
