// Table D (Lemmas 3.2 / 3.5): measured competitiveness of Redundant Share
// under single-device edits, against the theoretical bounds (4 for k = 2,
// k^2 in general).  Movement is compared with the minimum any strategy must
// move to reach the new per-device distribution.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace rds;
  using namespace rds::bench;

  header("Table D: competitiveness (moved / optimal) vs Lemma 3.2/3.5 bounds");
  std::cout << cell("k", 4) << cell("edit", 18) << cell("moved", 10)
            << cell("optimal", 10) << cell("ratio", 8) << cell("bound", 8)
            << '\n';

  constexpr std::uint64_t kBalls = 60'000;
  const ClusterConfig base = paper_heterogeneous_base();

  for (const unsigned k : {2u, 3u, 4u, 5u}) {
    const RedundantShare sb(base, k);
    const BlockMap mb(sb, kBalls);
    for (const EditKind kind :
         {EditKind::kAddBiggest, EditKind::kAddSmallest,
          EditKind::kRemoveBiggest, EditKind::kRemoveSmallest}) {
      const EditResult edit = apply_edit(base, kind, 1000, 100'000);
      const RedundantShare sa(edit.config, k);
      const BlockMap ma(sa, kBalls);
      const MovementReport report = diff_placements(mb, ma);
      std::cout << cell(std::to_string(k), 4) << cell(to_string(kind), 18)
                << cell(report.moved_set, 10) << cell(report.optimal_moves, 10)
                << cell(report.competitive_set(), 8, 3)
                << cell(static_cast<double>(k) * k, 8, 0) << '\n';
    }
  }
  std::cout << "\nexpected: every ratio far below its bound; biggest-bin"
            << " edits cheaper than smallest-bin edits\n";
  return 0;
}
