// Extension experiment: failure-domain placement -- CRUSH's straw selection
// vs hierarchical Redundant Share.
//
// Selecting k distinct failure domains by a straw (rendezvous top-k) race
// is the paper's *trivial strategy* at domain granularity; with
// heterogeneous domain sizes it under-serves the biggest domain and wastes
// capacity exactly as Lemma 2.4 predicts.  Replacing the domain selection
// with Redundant Share keeps the rack isolation and removes the loss.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "src/core/hierarchical.hpp"
#include "src/placement/crush.hpp"
#include "src/sim/block_map.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

/// One rack holding `big_share` of the capacity + 4 equal small racks.
std::vector<FailureDomain> racks(double big_share) {
  const double small_total = 1.0 - big_share;
  const auto big = static_cast<std::uint64_t>(8000.0 * big_share);
  const auto small = static_cast<std::uint64_t>(8000.0 * small_total / 4.0);
  std::vector<FailureDomain> domains;
  domains.push_back(
      {"big", {{1, big / 2, ""}, {2, big - big / 2, ""}}});
  for (DeviceId r = 0; r < 4; ++r) {
    domains.push_back({"small-" + std::to_string(r),
                       {{10 + 2 * r, small / 2, ""},
                        {11 + 2 * r, small - small / 2, ""}}});
  }
  return domains;
}

double big_rack_load(const ReplicationStrategy& s) {
  constexpr std::uint64_t kBalls = 120'000;
  const BlockMap map(s, kBalls);
  return static_cast<double>(map.count_on(1) + map.count_on(2)) / kBalls;
}

}  // namespace

int main() {
  header("Extension: failure domains -- CRUSH straw vs hierarchical RS");
  std::cout << "1 big rack + 4 small racks, k = 2; the big rack's fair load"
            << " is min(1, 2*share)\ncopies per ball.  Straw selection"
            << " (trivial draws) under-serves it.\n\n";
  std::cout << cell("big-rack share", 16) << cell("fair load", 12)
            << cell("crush", 12) << cell("hier-RS", 12)
            << cell("crush waste%", 14) << '\n';

  for (const double share : {0.2, 0.3, 0.4, 0.5}) {
    const auto domains = racks(share);
    const CrushPlacement crush(domains, 2);
    const HierarchicalRedundantShare hier(domains, 2);
    const double fair = std::min(1.0, 2.0 * share);
    const double crush_load = big_rack_load(crush);
    const double hier_load = big_rack_load(hier);
    std::cout << cell(share, 16, 2) << cell(fair, 12, 4)
              << cell(crush_load, 12, 4) << cell(hier_load, 12, 4)
              << cell(100.0 * (fair - crush_load) / fair, 14, 2) << '\n';
  }

  std::cout << "\nboth strategies always separate the two copies across"
            << " racks; only the\nload (hence usable capacity) differs."
            << "  expected: hier-RS == fair on every row;\ncrush wastes up"
            << " to ~22% of the big rack at share 0.5 (Figure 1 at rack"
            << " scale)\n";
  return 0;
}
