#!/usr/bin/env bash
# One-command Release-mode perf harness (docs/benchmarks.md):
#
#   configure (Release) -> build -> run perf_placement + perf_storage +
#   perf_latency -> stamp build-type context -> optionally ratchet-check
#   vs baseline.
#
# Outputs (stamped, i.e. context reports the code-under-test build type):
#   BENCH_placement.json  full perf_placement run -- the ratchet baseline
#   BENCH_batch.json      bm_batch_place rows only (BatchPlacer sweep)
#   BENCH_storage.json    perf_storage run
#   BENCH_latency.json    perf_latency SLO run (p99 policy-ordering rule)
#
# Debug builds cannot produce these files: the perf binaries refuse
# machine-readable output without NDEBUG (bench/perf_main.hpp), and
# `perf_ratchet stamp` refuses runs not marked release.  With --filter the
# outputs land in the build dir instead of the repo root so a partial run
# can never overwrite the committed baseline.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-perf"
OUT_DIR="$ROOT"
FILTER=""
CHECK=0

usage() {
  echo "usage: bench/run_perf.sh [--build-dir DIR] [--out DIR]" >&2
  echo "                         [--filter REGEX] [--check]" >&2
  exit 2
}

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT_DIR="$2"; shift 2 ;;
    --filter) FILTER="$2"; shift 2 ;;
    --check) CHECK=1; shift ;;
    *) usage ;;
  esac
done

if [ -n "$FILTER" ] && [ "$OUT_DIR" = "$ROOT" ]; then
  OUT_DIR="$BUILD_DIR"
  echo "run_perf: --filter set; writing partial results to $OUT_DIR" >&2
fi

mkdir -p "$OUT_DIR"

cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" \
  --target perf_placement perf_storage perf_latency perf_ratchet \
  -j"$(nproc)"

RATCHET="$BUILD_DIR/tools/perf_ratchet"

run_and_stamp() {
  local bin="$1" raw="$2" out="$3" filter="$4"
  local args=("--benchmark_out=$raw" "--benchmark_out_format=json")
  if [ -n "$filter" ]; then
    args+=("--benchmark_filter=$filter")
  fi
  "$bin" "${args[@]}"
  "$RATCHET" stamp --in "$raw" --out "$out"
}

run_and_stamp "$BUILD_DIR/bench/perf_placement" \
  "$BUILD_DIR/bench/placement_raw.json" \
  "$OUT_DIR/BENCH_placement.json" "$FILTER"
run_and_stamp "$BUILD_DIR/bench/perf_placement" \
  "$BUILD_DIR/bench/batch_raw.json" \
  "$OUT_DIR/BENCH_batch.json" "bm_batch_place"
run_and_stamp "$BUILD_DIR/bench/perf_storage" \
  "$BUILD_DIR/bench/storage_raw.json" \
  "$OUT_DIR/BENCH_storage.json" "$FILTER"
run_and_stamp "$BUILD_DIR/bench/perf_latency" \
  "$BUILD_DIR/bench/latency_raw.json" \
  "$OUT_DIR/BENCH_latency.json" "$FILTER"

if [ "$CHECK" = 1 ]; then
  "$RATCHET" check \
    --baseline "$ROOT/BENCH_placement.json" \
    --current "$OUT_DIR/BENCH_placement.json" \
    --min-speedup "bm_factory_replicated/precomputed/1000/4:bm_factory_replicated/redundant_share/1000/4:10"
  # The SLO rule is machine-independent (seeded queueing-model outputs),
  # so it is strict: power-of-two must beat random at p99 under Zipf-0.9.
  "$RATCHET" check \
    --baseline "$ROOT/BENCH_latency.json" \
    --current "$OUT_DIR/BENCH_latency.json" \
    --max-p99-ratio "bm_loadsim/zipf09/power-of-two:bm_loadsim/zipf09/random:1.0"
fi

echo "run_perf: done; stamped results in $OUT_DIR"
