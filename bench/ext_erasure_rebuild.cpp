// Extension experiment: erasure-coded virtual disk on Redundant Share.
//
// Section 3 of the paper argues that Redundant Share's copy identification
// makes it usable under erasure codes.  This experiment exercises exactly
// that: a VirtualDisk with RS(d+p) fragments placed by Redundant Share over
// heterogeneous devices; one device crashes; the rebuild reconstructs the
// lost fragments from the survivors.  Reported: storage overhead, rebuild
// traffic, degraded-read counts -- mirroring (k = 3) as the baseline.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/erasure/rdp.hpp"
#include "src/storage/virtual_disk.hpp"
#include "src/util/random.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

ClusterConfig pool() {
  std::vector<Device> devices;
  const std::uint64_t caps[] = {4000, 3500, 3000, 3000, 2500,
                                2000, 2000, 1500, 1500, 1000};
  for (std::size_t i = 0; i < 10; ++i) {
    devices.push_back({i, caps[i], "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

Bytes payload(std::uint64_t block) {
  Bytes b(256);
  Xoshiro256 rng(block + 17);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

void run(std::shared_ptr<RedundancyScheme> scheme, const std::string& label) {
  VirtualDisk disk(pool(), scheme);
  constexpr std::uint64_t kBlocks = 1500;
  for (std::uint64_t b = 0; b < kBlocks; ++b) disk.write(b, payload(b));

  // Crash the largest device and read everything in degraded mode.
  disk.fail_device(0);
  std::uint64_t ok = 0;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    if (disk.read(b) == payload(b)) ++ok;
  }
  const std::uint64_t rebuilt = disk.rebuild();
  std::uint64_t ok_after = 0;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    if (disk.read(b) == payload(b)) ++ok_after;
  }
  const VirtualDisk::Stats& s = disk.stats();
  const double overhead =
      static_cast<double>(s.fragments_written) *
      (256.0 / scheme->min_fragments()) / (kBlocks * 256.0);

  std::cout << cell(label, 20) << cell(ok, 10) << cell(ok_after, 10)
            << cell(rebuilt, 10) << cell(s.bytes_moved, 12)
            << cell(s.degraded_reads, 10) << cell(overhead, 10, 2)
            << cell(disk.scrub().clean() ? "clean" : "DIRTY", 8) << '\n';
}

}  // namespace

int main() {
  header("Extension: erasure-coded rebuild over Redundant Share placement");
  std::cout << cell("scheme", 20) << cell("ok(degr)", 10) << cell("ok(rebuilt)", 10)
            << cell("rebuilt", 10) << cell("bytes moved", 12)
            << cell("degr reads", 10) << cell("overhead", 10)
            << cell("scrub", 8) << '\n';

  run(std::make_shared<MirroringScheme>(3), "mirror(k=3)");
  run(std::make_shared<ReedSolomonScheme>(4, 2), "RS(4+2)");
  run(std::make_shared<ReedSolomonScheme>(6, 2), "RS(6+2)");
  run(std::make_shared<EvenOddScheme>(5), "EVENODD(p=5)");
  run(std::make_shared<RdpScheme>(7), "RDP(p=7)");

  std::cout << "\nexpected: all blocks readable degraded and after rebuild;"
            << " RS overhead 1.5x/1.33x vs 3x for mirroring\n";
  return 0;
}
