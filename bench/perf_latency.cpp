// The SLO benchmark behind BENCH_latency.json: replica-selection policies
// under Zipf-0.9 read traffic on a heterogeneous pool.
//
// Two kinds of numbers come out of every row:
//
//  * items_per_second -- simulator throughput (machine-dependent, covered
//    by the ratchet's noise tolerance like every other perf row);
//  * the SLO counters p50_us / p99_us / p999_us / max_util -- outputs of
//    the queueing MODEL, not of the clock.  The trace, the service draws
//    and the selector's randomness are all seeded, so these are
//    bit-reproducible on any machine, which is what lets CI enforce a
//    policy ordering ("power-of-two beats random at p99") as a
//    machine-independent perf_ratchet rule instead of a flaky wall-clock
//    comparison (docs/benchmarks.md).
#include <benchmark/benchmark.h>

#include <string>

#include "bench/perf_main.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/sim/load_sim.hpp"
#include "src/sim/replica_selector.hpp"
#include "src/sim/workload.hpp"

namespace {

using namespace rds;

constexpr std::uint64_t kBalls = 20'000;
constexpr std::uint64_t kRequests = 200'000;
// ~70% mean utilization under a fair placement: enough queueing for the
// policies to separate, short of saturation.
constexpr double kRatePerUs = 0.085;

ClusterConfig pool() {
  std::vector<Device> devices;
  const std::uint64_t caps[] = {8000, 8000, 4000, 4000, 2000, 2000, 2000,
                                2000};
  for (std::size_t i = 0; i < 8; ++i) {
    devices.push_back({i, caps[i], "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<ServiceModel> service_models(const ClusterConfig& config) {
  // Device speed scales with capacity, service times exponential around it.
  std::vector<ServiceModel> models;
  for (const Device& d : config.devices()) {
    const double scale = 8000.0 / static_cast<double>(d.capacity);
    ServiceModel m;
    m.seek_us = 20.0 * scale;
    m.us_per_block = 5.0 * scale;
    m.shape = ServiceModel::Shape::kExponential;
    models.push_back(m);
  }
  return models;
}

void bm_loadsim(benchmark::State& state, SelectorKind kind) {
  const ClusterConfig config = pool();
  const auto strategy =
      make_replication_strategy(PlacementKind::kRedundantShare, config, 2);
  const BlockMap map(*strategy, kBalls);
  const std::vector<ServiceModel> models = service_models(config);
  const auto workload = make_workload("zipf:0.9", kBalls);
  Xoshiro256 trace_rng(4242);
  const auto trace = make_trace(*workload, kRequests, kRatePerUs, trace_rng);

  LoadResult last;
  for (auto _ : state) {
    // Fresh, identically-seeded selector and RNG every iteration: the SLO
    // counters are pure functions of (trace, models, policy, seed).
    Xoshiro256 rng(7);
    const auto selector = make_replica_selector(kind);
    last = simulate_load(config, map, trace, models, *selector, rng);
    benchmark::DoNotOptimize(last.p99_response_us);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRequests));
  state.counters["p50_us"] = last.p50_response_us;
  state.counters["p99_us"] = last.p99_response_us;
  state.counters["p999_us"] = last.p999_response_us;
  state.counters["max_util"] = last.max_utilization();
}

void bm_make_trace(benchmark::State& state, const std::string& spec) {
  const auto workload = make_workload(spec, kBalls);
  for (auto _ : state) {
    Xoshiro256 rng(11);
    benchmark::DoNotOptimize(
        make_trace(*workload, kRequests, kRatePerUs, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRequests));
}

}  // namespace

int main(int argc, char** argv) {
  // Explicit registration so row names carry the workload and the policy's
  // canonical spelling: bm_loadsim/zipf09/<policy> -- the names the
  // committed latency rules key on.
  for (const SelectorKind kind : rds::all_selector_kinds()) {
    const std::string name =
        "bm_loadsim/zipf09/" + std::string(rds::to_string(kind));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [kind](benchmark::State& state) { bm_loadsim(state, kind); });
  }
  for (const std::string spec :
       {"uniform", "zipf:0.9", "flash-crowd:0.9", "diurnal:0.9",
        "hotspot-shift:0.9"}) {
    std::string label = spec;
    for (char& c : label) {
      if (c == ':' || c == ',') c = '_';
    }
    const std::string name = "bm_make_trace/" + label;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [spec](benchmark::State& state) { bm_make_trace(state, spec); });
  }
  return rds::bench::perf_main(argc, argv);
}
