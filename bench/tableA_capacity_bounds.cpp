// Table A (Section 2 prose): capacity-efficiency characterization.
//
// For a set of representative capacity vectors: Lemma 2.1 feasibility,
// Lemma 2.2 maximum ball count (via Algorithm 1's adjusted weights), and
// verification that the constructive greedy packer of Lemma 2.1 achieves
// exactly that bound and not one ball more.
#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <numeric>

#include "bench/bench_common.hpp"
#include "src/core/capacity.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

void row(const std::vector<std::uint64_t>& caps, unsigned k) {
  std::vector<double> capsd(caps.begin(), caps.end());
  std::ranges::sort(capsd, std::greater<>());
  const CapacityAnalysis a = analyze_capacity(capsd, k);
  const auto bound =
      static_cast<std::uint64_t>(std::floor(a.max_balls + 1e-9));

  std::vector<std::uint64_t> sorted(caps.begin(), caps.end());
  std::ranges::sort(sorted, std::greater<>());
  const bool packs = greedy_pack(sorted, k, bound).has_value();
  const bool overflow_fails = !greedy_pack(sorted, k, bound + 1).has_value();

  std::ostringstream desc;
  desc << "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    desc << (i ? "," : "") << sorted[i];
  }
  desc << "}";

  std::cout << cell(desc.str(), 24) << cell(std::to_string(k), 4)
            << cell(a.feasible_unadjusted ? "yes" : "no", 10)
            << cell(a.raw_capacity, 12, 0) << cell(a.usable_capacity, 12, 0)
            << cell(a.max_balls, 12, 1)
            << cell(packs && overflow_fails ? "tight" : "VIOLATED", 10)
            << '\n';
}

}  // namespace

int main() {
  header("Table A: Lemma 2.1/2.2 capacity bounds and Algorithm 1");
  std::cout << cell("capacities", 24) << cell("k", 4) << cell("feasible", 10)
            << cell("raw B", 12) << cell("usable B'", 12)
            << cell("max balls", 12) << cell("greedy", 10) << '\n';

  row({2, 1, 1}, 2);
  row({3, 1, 1}, 2);
  row({10, 1, 1}, 2);
  row({10, 10, 1}, 2);
  row({4, 4, 4, 1, 1}, 2);
  row({10, 10, 1, 1}, 3);
  row({7, 1, 1, 1}, 3);
  row({3, 2, 2, 2, 1}, 3);
  row({100, 60, 30, 10, 5, 5}, 3);
  row({9, 7, 5, 2}, 4);
  row({50, 40, 30, 20, 10, 5, 5, 5}, 4);
  row({20, 20, 20, 20, 20}, 5);

  std::cout << "\n'greedy = tight' verifies floor(B'/k) balls pack and"
            << " floor(B'/k)+1 balls do not (Lemma 2.2 is exact)\n";
  return 0;
}
