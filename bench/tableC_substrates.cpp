// Table C: the single-copy substrate zoo compared head-to-head.
//
// Every fair single-copy strategy the paper discusses (consistent hashing,
// Share, Sieve, the linear/logarithmic weighted DHTs, rendezvous) measured
// on the same heterogeneous pool for (a) fairness -- max relative deviation
// from the capacity shares, (b) adaptivity -- fraction of balls moved when
// one device is added, vs the optimal fraction, and (c) lookup cost proxy.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "src/placement/consistent_hashing.hpp"
#include "src/placement/rendezvous.hpp"
#include "src/placement/share.hpp"
#include "src/placement/sieve.hpp"
#include "src/placement/weighted_dht.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

ClusterConfig pool() {
  std::vector<Device> devices;
  const std::uint64_t caps[] = {4000, 3200, 2500, 2000, 1600,
                                1200, 900,  600,  500};
  for (std::size_t i = 0; i < 9; ++i) {
    devices.push_back({i, caps[i], ""});
  }
  return ClusterConfig(std::move(devices));
}

template <typename Strategy, typename... Args>
void run(const std::string& label, Args&&... args) {
  const ClusterConfig before = pool();
  ClusterConfig after = before;
  after.add_device({100, 3000, "new"});

  const Strategy sb(before, std::forward<Args>(args)...);
  const Strategy sa(after, std::forward<Args>(args)...);

  constexpr std::uint64_t kBalls = 120'000;
  std::vector<std::uint64_t> counts(before.size(), 0);
  std::uint64_t moved = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t a = 0; a < kBalls; ++a) {
    const DeviceId db = sb.place(a);
    ++counts[before.index_of(db).value()];
    if (db != sa.place(a)) ++moved;
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<double> expected;
  for (std::size_t i = 0; i < before.size(); ++i) {
    expected.push_back(static_cast<double>(kBalls) *
                       before.relative_capacity(i));
  }
  const double optimal =
      3000.0 / static_cast<double>(after.total_capacity());
  const double ns_per_lookup =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      (2.0 * kBalls);

  std::cout << cell(label, 28)
            << cell(100.0 * max_relative_deviation(counts, expected), 12, 2)
            << cell(100.0 * static_cast<double>(moved) / kBalls, 12, 2)
            << cell(100.0 * optimal, 12, 2) << cell(ns_per_lookup, 12, 0)
            << '\n';
}

}  // namespace

int main() {
  header("Table C: single-copy substrate comparison (9 devices + 1 added)");
  std::cout << cell("strategy", 28) << cell("unfair%", 12) << cell("moved%", 12)
            << cell("optimal%", 12) << cell("ns/lookup", 12) << '\n';

  run<WeightedRendezvous>("rendezvous");
  run<ConsistentHashing>("consistent-hashing");
  run<Share>("share");
  run<Sieve>("sieve");
  run<WeightedDht>("weighted-dht(log)", DhtDistance::kLogarithmic, 64u);
  run<WeightedDht>("weighted-dht(linear)", DhtDistance::kLinear, 64u);

  std::cout << "\nexpected: rendezvous and sieve exactly fair and near-"
            << "optimally adaptive; ring-\nbased schemes (CH, weighted DHTs)"
            << " pay layout fluctuation in fairness; Share\ntrades some"
            << " movement for O(1) lookups\n";
  return 0;
}
