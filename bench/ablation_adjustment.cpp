// Ablation 1: what the inhomogeneity compensation (the paper's b-tilde,
// equations (2)-(5)) and Algorithm 1 (optimal weights) buy.
//
// For configurations where some bin is too large for its suffix, we report
// the exact per-bin deviation from the fair share with the compensation ON
// and OFF, and -- for infeasible configurations -- with the capacity
// adjustment ON and OFF.
#include <cmath>
#include <iostream>
#include <numeric>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

double max_deviation(const RedundantShare& s) {
  const std::vector<double> expected = s.exact_expected_copies();
  const std::span<const double> adjusted = s.adjusted_capacities();
  const double total = std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double target =
        static_cast<double>(s.replication()) * adjusted[i] / total;
    worst = std::max(worst, std::abs(expected[i] - target) / target);
  }
  return worst;
}

void row(const std::vector<std::uint64_t>& caps, unsigned k) {
  const ClusterConfig config = cluster_of(caps);
  RedundantShare::Options on;
  RedundantShare::Options off;
  off.apply_adjustment = false;

  std::ostringstream desc;
  desc << "{";
  for (std::size_t i = 0; i < caps.size(); ++i) {
    desc << (i ? "," : "") << caps[i];
  }
  desc << "}";
  std::cout << cell(desc.str(), 22) << cell(std::to_string(k), 4)
            << cell(100.0 * max_deviation(RedundantShare(config, k, on)), 16,
                    6)
            << cell(100.0 * max_deviation(RedundantShare(config, k, off)), 16,
                    4)
            << '\n';
}

}  // namespace

int main() {
  header("Ablation 1: the inhomogeneity compensation (b-tilde)");
  std::cout << "max relative deviation from the fair share, exact law (%):\n\n"
            << cell("capacities", 22) << cell("k", 4)
            << cell("with fix (%)", 16) << cell("without fix (%)", 16)
            << '\n';

  row({3, 3, 1, 1}, 2);
  row({4, 4, 4, 1, 1}, 2);
  row({5, 4, 4, 1, 1}, 2);
  row({9, 9, 9, 2, 1, 1}, 2);
  row({3, 2, 2, 2, 1}, 3);     // cascaded clamp: needs the general fix
  row({5, 4, 3, 2, 1, 1}, 3);
  row({6, 5, 4, 3, 2, 1, 1}, 4);
  row({5, 4, 3, 2, 1}, 2);     // homogeneous enough: fix is a no-op

  std::cout << "\nexpected: 0% with the fix everywhere; up to several percent"
            << " without it on inhomogeneous rows, 0% on the last row\n";

  header("Ablation 1b: Algorithm 1 (optimal weights) on infeasible systems");
  std::cout << "capacities {10,1,1}, k = 2: raw capacities are an impossible"
            << " target\n(the big bin cannot hold >1 copy per ball);"
            << " Algorithm 1 clamps to the usable {2,1,1}.\n\n";
  {
    const ClusterConfig config = cluster_of({10, 1, 1});
    RedundantShare::Options raw;
    raw.apply_optimal_weights = false;
    const RedundantShare with(config, 2);
    const RedundantShare without(config, 2, raw);
    const std::vector<double> ew = with.exact_expected_copies();
    const std::vector<double> eo = without.exact_expected_copies();
    std::cout << cell("bin", 6) << cell("raw cap", 10) << cell("usable", 10)
              << cell("with Alg.1", 12) << cell("without", 12)
              << cell("physical max", 14) << '\n';
    const double raw_caps[] = {10, 1, 1};
    for (std::size_t i = 0; i < 3; ++i) {
      std::cout << cell(static_cast<std::uint64_t>(i), 6)
                << cell(raw_caps[i], 10, 0)
                << cell(with.adjusted_capacities()[i], 10, 0)
                << cell(ew[i], 12, 4) << cell(eo[i], 12, 4)
                << cell(1.0, 14, 1) << '\n';
    }
    std::cout << "\nnote: the selection chain's min(1, .) self-clamps, so the"
              << " PLACEMENT is the\nsame either way here -- what Algorithm 1"
              << " contributes is the capacity accounting\n(usable = 4, max"
              << " 2 balls, Lemma 2.2) and exact moment-matching targets"
              << "\n(fairness_residual = 0 instead of an unachievable"
              << " 10:1:1 target)\n";
  }
  return 0;
}
