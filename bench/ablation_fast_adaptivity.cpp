// Ablation 2: adaptivity cost of the O(k log n) variant (Section 3.3).
//
// FastRedundantShare realizes the identical placement *distribution* but
// couples the random choices differently: one uniform per level
// (inverse-CDF sampling) instead of one uniform per (bin, level)
// experiment.  When the configuration changes, the inverse-CDF coupling
// shifts more mass than the per-bin experiments, so the fast variant pays
// for its speed with extra migration traffic.  This benchmark quantifies
// the trade-off the paper's Section 3.3 leaves implicit ("fairness and
// adaptivity are granted by the hash functions").
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/fast_redundant_share.hpp"
#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

template <typename Strategy>
MovementReport run(const ClusterConfig& before, const ClusterConfig& after,
                   unsigned k, std::uint64_t balls) {
  const Strategy sb(before, k);
  const Strategy sa(after, k);
  return diff_placements(BlockMap(sb, balls), BlockMap(sa, balls));
}

}  // namespace

int main() {
  header("Ablation 2: adaptivity of LinMirror vs the O(k log n) variant");
  std::cout << cell("k", 4) << cell("edit", 18) << cell("slow moved", 12)
            << cell("fast moved", 12) << cell("optimal", 10)
            << cell("slow ratio", 12) << cell("fast ratio", 12) << '\n';

  constexpr std::uint64_t kBalls = 60'000;
  const ClusterConfig base = paper_heterogeneous_base();

  for (const unsigned k : {2u, 4u}) {
    for (const EditKind kind :
         {EditKind::kAddBiggest, EditKind::kAddSmallest,
          EditKind::kRemoveBiggest, EditKind::kRemoveSmallest}) {
      const EditResult edit = apply_edit(base, kind, 1000, 100'000);
      const MovementReport slow =
          run<RedundantShare>(base, edit.config, k, kBalls);
      const MovementReport fast =
          run<FastRedundantShare>(base, edit.config, k, kBalls);
      std::cout << cell(std::to_string(k), 4) << cell(to_string(kind), 18)
                << cell(slow.moved_set, 12) << cell(fast.moved_set, 12)
                << cell(slow.optimal_moves, 10)
                << cell(slow.competitive_set(), 12, 3)
                << cell(fast.competitive_set(), 12, 3) << '\n';
    }
  }
  std::cout << "\nexpected: identical fairness (not shown), but the fast"
            << " variant moves more copies per edit\n";
  return 0;
}
