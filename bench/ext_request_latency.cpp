// Extension experiment: the read-path SLO table.
//
// The paper's fairness definition includes requests ("x% of the capacity
// gets x% of the data and the requests"), but which of a ball's k copies a
// client reads is outside the placement function -- it is the replica
// selection policy.  This table replays the same Zipf-0.9 trace against a
// capacity-fair Redundant Share placement under every selection policy and
// reports the SLO quantiles (p50/p99/p999) plus the utilization spread:
// queue-aware policies (least-loaded, power-of-two-choices) hold the tail
// latency an order of magnitude below oblivious ones at the same offered
// load.  A second sweep holds the policy fixed (p2c) and varies the
// workload shape.  FCFS queueing simulation throughout
// (src/sim/load_sim.hpp); the machine-gated numbers live in
// BENCH_latency.json via bench/perf_latency.
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/sim/load_sim.hpp"
#include "src/sim/replica_selector.hpp"
#include "src/sim/workload.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

ClusterConfig pool() {
  std::vector<Device> devices;
  const std::uint64_t caps[] = {8000, 8000, 4000, 4000, 2000, 2000, 2000,
                                2000};
  for (std::size_t i = 0; i < 8; ++i) {
    devices.push_back({i, caps[i], "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<ServiceModel> service_models(const ClusterConfig& config) {
  // Transfer speed proportional to capacity: an 8T disk is 4x as fast as a
  // 2T disk (same generation-scaling the paper's scenario implies).
  std::vector<ServiceModel> models;
  for (const Device& d : config.devices()) {
    const double scale = 8000.0 / static_cast<double>(d.capacity);
    ServiceModel m;
    m.seek_us = 20.0 * scale;
    m.us_per_block = 5.0 * scale;
    m.shape = ServiceModel::Shape::kExponential;
    models.push_back(m);
  }
  return models;
}

constexpr std::uint64_t kBalls = 50'000;
constexpr std::uint64_t kRequests = 300'000;
// Aggregate service capacity ~8 disks; rate chosen for ~70% mean load
// under fair placement, which pushes an unbalanced pick's slowest devices
// into saturation.
constexpr double kRatePerUs = 0.085;

void print_row(const std::string& label, const LoadResult& r) {
  std::cout << cell(label, 24) << cell(r.p50_response_us, 12, 1)
            << cell(r.p99_response_us, 12, 1)
            << cell(r.p999_response_us, 12, 1)
            << cell(100.0 * r.max_utilization(), 12, 1);
  double min_util = 1.0;
  for (const DeviceLoad& d : r.devices) {
    min_util = std::min(min_util, d.utilization);
  }
  std::cout << cell(100.0 * min_util, 12, 1) << '\n';
}

void table_header(const std::string& first) {
  std::cout << cell(first, 24) << cell("p50 us", 12) << cell("p99 us", 12)
            << cell("p999 us", 12) << cell("max util%", 12)
            << cell("min util%", 12) << '\n';
}

}  // namespace

int main() {
  header("Extension: read-path SLO under FCFS queueing");
  std::cout << "pool: 2x8T (fast), 2x4T, 4x2T (slow); device speed scales"
            << " with size\nplacement: redundant-share k=2, "
            << kRequests << " requests at " << kRatePerUs << "/us\n\n";

  const ClusterConfig config = pool();
  const auto strategy =
      make_replication_strategy(PlacementKind::kRedundantShare, config, 2);
  const BlockMap map(*strategy, kBalls);
  const std::vector<ServiceModel> models = service_models(config);

  std::cout << "selection policy sweep (workload zipf:0.9):\n";
  table_header("policy");
  const auto workload = make_workload("zipf:0.9", kBalls);
  for (const SelectorKind kind : all_selector_kinds()) {
    Xoshiro256 rng(4242);  // same trace and service draws for every policy
    const auto trace = make_trace(*workload, kRequests, kRatePerUs, rng);
    const auto selector = make_replica_selector(kind);
    print_row(std::string(to_string(kind)),
              simulate_load(config, map, trace, models, *selector, rng));
  }

  std::cout << "\nworkload sweep (policy power-of-two):\n";
  table_header("workload");
  for (const std::string_view spec :
       {std::string_view("uniform"), std::string_view("zipf:0.9"),
        std::string_view("flash-crowd:0.9"), std::string_view("diurnal:0.9"),
        std::string_view("hotspot-shift:0.9")}) {
    Xoshiro256 rng(4242);
    const auto shaped = make_workload(spec, kBalls);
    const auto trace = make_trace(*shaped, kRequests, kRatePerUs, rng);
    const auto selector = make_replica_selector(SelectorKind::kPowerOfTwo);
    print_row(std::string(spec),
              simulate_load(config, map, trace, models, *selector, rng));
  }

  std::cout << "\nexpected: queue-aware policies (least-loaded, p2c) keep"
            << " p99/p999 far below\nrandom and round-robin at the same"
            << " offered load; water-filling sits between\n(speed-aware but"
            << " blind to queue state)\n";
  return 0;
}
