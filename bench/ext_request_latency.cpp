// Extension experiment: what request fairness buys in service latency.
//
// The paper's fairness definition includes requests ("x% of the capacity
// gets x% of the data and the requests").  On a pool where device speed
// scales with device size (newer disks are both bigger and faster), the
// capacity-proportional request distribution of Redundant Share keeps every
// device at equal utilization; uniform striping overloads the small/slow
// devices and the tail latency explodes.  FCFS queueing simulation, Zipf
// reads, Poisson arrivals.
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/static_placement.hpp"
#include "src/placement/trivial_replication.hpp"
#include "src/sim/disk_sim.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

ClusterConfig pool() {
  std::vector<Device> devices;
  const std::uint64_t caps[] = {8000, 8000, 4000, 4000, 2000, 2000, 2000,
                                2000};
  for (std::size_t i = 0; i < 8; ++i) {
    devices.push_back({i, caps[i], "disk-" + std::to_string(i)});
  }
  return ClusterConfig(std::move(devices));
}

std::vector<DiskPerf> perf_models(const ClusterConfig& config) {
  // Transfer speed proportional to capacity: an 8T disk is 4x as fast as a
  // 2T disk (same generation-scaling the paper's scenario implies).
  std::vector<DiskPerf> models;
  for (const Device& d : config.devices()) {
    const double scale = 8000.0 / static_cast<double>(d.capacity);
    models.push_back({20.0 * scale, 5.0 * scale});
  }
  return models;
}

void run(const ReplicationStrategy& strategy, const std::string& label) {
  const ClusterConfig config = pool();
  const BlockMap map(strategy, 50'000);
  Xoshiro256 rng(4242);
  // Aggregate service capacity ~8 disks; rate chosen for ~70% mean load
  // under fair placement, which pushes an unbalanced placement's slowest
  // devices into saturation.
  const auto trace = make_trace(map, 300'000, /*rate=*/0.085, /*skew=*/0.9,
                                rng);
  const std::vector<DiskPerf> models = perf_models(config);
  const SimulationResult r = simulate_requests(config, map, trace, models,
                                               ReplicaPolicy::kLeastLoaded);
  std::cout << cell(label, 24) << cell(r.mean_response_us, 12, 1)
            << cell(r.p99_response_us, 12, 1)
            << cell(100.0 * r.max_utilization(), 12, 1);
  // Utilization spread: fair placement keeps it tight.
  double min_util = 1.0;
  for (const DeviceLoad& d : r.devices) {
    min_util = std::min(min_util, d.utilization);
  }
  std::cout << cell(100.0 * min_util, 12, 1) << '\n';
}

}  // namespace

int main() {
  header("Extension: request latency under FCFS queueing (Zipf 0.9 reads)");
  std::cout << "pool: 2x8T (fast), 2x4T, 4x2T (slow); device speed scales"
            << " with size\n\n";
  std::cout << cell("strategy", 24) << cell("mean us", 12) << cell("p99 us", 12)
            << cell("max util%", 12) << cell("min util%", 12) << '\n';

  const ClusterConfig config = pool();
  run(RedundantShare(config, 2), "redundant-share");
  run(TrivialReplication(config, 2), "trivial");
  run(RoundRobinStriping(config, 2), "raid-striping");

  std::cout << "\nexpected: redundant-share balances utilization across"
            << " devices and has the\nlowest tail latency; striping saturates"
            << " the slow disks (max util -> 100%)\n";
  return 0;
}
