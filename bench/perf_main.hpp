// Entry point for the perf_* google-benchmark binaries -- the layer that
// makes committed benchmark JSON trustworthy.
//
// Two problems it solves (docs/benchmarks.md):
//
//  1. A debug build must never masquerade as a perf measurement.  When the
//     binary is compiled without NDEBUG, JSON emission is refused outright
//     (exit 1 before any benchmark runs) and console runs carry a loud
//     banner, so a debug-build BENCH_*.json cannot be produced, let alone
//     committed.
//
//  2. The stock JSON context key `library_build_type` reports how the
//     google-benchmark LIBRARY was compiled, not this repo's code -- on
//     Debian the packaged libbenchmark ships with assertions on, which
//     stamps every run "debug" regardless of the flags the code under test
//     was built with (exactly the trap the first committed BENCH_batch.json
//     fell into).  perf_main() records the truth about the code under test
//     as the custom context key `rds_build_type`; `perf_ratchet stamp`
//     then rewrites `library_build_type` from it (keeping the library's
//     own mode as `benchmark_library_assertions`).
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string_view>

namespace rds::bench {

#ifdef NDEBUG
inline constexpr bool kReleaseBuild = true;
#else
inline constexpr bool kReleaseBuild = false;
#endif

/// True when any benchmark flag asks for machine-readable output (a JSON
/// console format or any --benchmark_out file, whatever its format).
inline bool machine_output_requested(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--benchmark_format=") &&
        arg != "--benchmark_format=console") {
      return true;
    }
    if (arg.starts_with("--benchmark_out=") ||
        arg.starts_with("--benchmark_out_format=")) {
      return true;
    }
  }
  return false;
}

/// main() body shared by every perf binary.
inline int perf_main(int argc, char** argv) {
  if (!kReleaseBuild && machine_output_requested(argc, argv)) {
    std::cerr
        << "perf harness: refusing to emit benchmark output files from a "
           "build without NDEBUG.\n"
           "Reconfigure with -DCMAKE_BUILD_TYPE=Release (bench/run_perf.sh "
           "does this) and rerun;\ndebug-build numbers must never reach a "
           "committed BENCH_*.json.\n";
    return 1;
  }
  if (!kReleaseBuild) {
    std::cerr << "==== DEBUG BUILD (NDEBUG off): timings below are NOT "
                 "representative ====\n";
  }
  benchmark::AddCustomContext("rds_build_type",
                              kReleaseBuild ? "release" : "debug");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rds::bench
