// Storage-layer microbenchmarks: VirtualDisk write/read throughput across
// redundancy schemes and placement strategies, codec encode/decode speed,
// and migration planning.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/perf_main.hpp"
#include "src/storage/erasure/evenodd.hpp"
#include "src/storage/virtual_disk.hpp"
#include "src/util/random.hpp"

namespace {

using namespace rds;

ClusterConfig pool() {
  std::vector<Device> devices;
  for (DeviceId uid = 0; uid < 12; ++uid) {
    devices.push_back({uid, 2'000'000, ""});
  }
  return ClusterConfig(std::move(devices));
}

Bytes payload(std::size_t size, std::uint64_t seed) {
  Bytes b(size);
  Xoshiro256 rng(seed);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng());
  return b;
}

std::shared_ptr<RedundancyScheme> scheme_for(int id) {
  switch (id) {
    case 0: return std::make_shared<MirroringScheme>(3);
    case 1: return std::make_shared<ReedSolomonScheme>(4, 2);
    case 2: return std::make_shared<EvenOddScheme>(5);
    default: throw std::logic_error("bad scheme id");
  }
}

void bm_disk_write(benchmark::State& state) {
  VirtualDisk disk(pool(), scheme_for(static_cast<int>(state.range(0))));
  const Bytes data = payload(4096, 1);
  std::uint64_t block = 0;
  for (auto _ : state) {
    disk.write(block++, data);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
  state.SetLabel(disk.scheme().name());
}

void bm_disk_read(benchmark::State& state) {
  VirtualDisk disk(pool(), scheme_for(static_cast<int>(state.range(0))));
  const Bytes data = payload(4096, 2);
  for (std::uint64_t b = 0; b < 256; ++b) disk.write(b, data);
  std::uint64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.read(block++ % 256));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
  state.SetLabel(disk.scheme().name());
}

void bm_disk_degraded_read(benchmark::State& state) {
  VirtualDisk disk(pool(), scheme_for(static_cast<int>(state.range(0))));
  const Bytes data = payload(4096, 3);
  for (std::uint64_t b = 0; b < 256; ++b) disk.write(b, data);
  disk.fail_device(0);
  std::uint64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.read(block++ % 256));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
  state.SetLabel(disk.scheme().name());
}

void bm_codec_encode(benchmark::State& state) {
  const auto scheme = scheme_for(static_cast<int>(state.range(0)));
  const Bytes data = payload(65536, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
  state.SetLabel(scheme->name());
}

void bm_codec_decode_two_losses(benchmark::State& state) {
  const auto scheme = scheme_for(static_cast<int>(state.range(0)));
  if (scheme->fragment_count() - scheme->min_fragments() < 2) {
    state.SkipWithError("scheme tolerates fewer than 2 losses");
    return;
  }
  const Bytes data = payload(65536, 5);
  const auto fragments = scheme->encode(data);
  std::vector<std::optional<Bytes>> damaged(fragments.begin(),
                                            fragments.end());
  damaged[0].reset();
  damaged[2].reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->decode(damaged, data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
  state.SetLabel(scheme->name());
}

// Same write path under different placement strategies: the placement
// lookup is a small slice of a mirrored 4 KiB write, so these rows bound
// how much the O(k) strategy can matter end-to-end at the storage layer.
void bm_disk_write_strategy(benchmark::State& state, PlacementKind kind) {
  VirtualDisk disk(pool(), std::make_shared<MirroringScheme>(3), kind);
  const Bytes data = payload(4096, 7);
  std::uint64_t block = 0;
  for (auto _ : state) {
    disk.write(block++, data);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}

}  // namespace

BENCHMARK(bm_disk_write)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(bm_disk_read)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(bm_disk_degraded_read)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(bm_codec_encode)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(bm_codec_decode_two_losses)->Arg(1)->Arg(2);
BENCHMARK_CAPTURE(bm_disk_write_strategy, redundant_share,
                  rds::PlacementKind::kRedundantShare);
BENCHMARK_CAPTURE(bm_disk_write_strategy, precomputed,
                  rds::PlacementKind::kPrecomputed);

int main(int argc, char** argv) { return rds::bench::perf_main(argc, argv); }
