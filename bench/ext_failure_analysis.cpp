// Extension experiment: exact correlated-failure (data-loss) analysis.
//
// Using the exact selection-chain law, computes the probability that a ball
// becomes unreadable when specific device subsets fail simultaneously --
// the number a storage architect actually needs when sizing k.  Cross
// checks mirroring levels and erasure thresholds on the paper's disk
// ladder, and shows how the loss concentrates on large-device pairs (they
// hold more data).
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/loss_analysis.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace rds;
  using namespace rds::bench;

  const ClusterConfig config = paper_heterogeneous_base();

  header("Extension: exact data-loss probability under correlated failures");
  std::cout << "pool: the paper's 8-disk ladder (500k..1.2M blocks)\n\n";

  std::cout << "-- double failures, k = 2 mirroring (loss = both copies"
            << " inside)\n";
  std::cout << cell("failed pair", 16) << cell("loss probability", 18)
            << '\n';
  const RedundantShare k2(config, 2);
  double worst = 0.0;
  std::pair<DeviceId, DeviceId> worst_pair{0, 0};
  for (std::size_t i = 0; i < config.size(); ++i) {
    for (std::size_t j = i + 1; j < config.size(); ++j) {
      const std::vector<DeviceId> failed{config[i].uid, config[j].uid};
      const double loss = exact_loss_probability(k2, failed);
      if (loss > worst) {
        worst = loss;
        worst_pair = {config[i].uid, config[j].uid};
      }
    }
  }
  {
    const std::vector<DeviceId> biggest{config[0].uid, config[1].uid};
    const std::vector<DeviceId> smallest{config[config.size() - 2].uid,
                                         config[config.size() - 1].uid};
    std::cout << cell("two biggest", 16)
              << cell(exact_loss_probability(k2, biggest), 18, 6) << '\n'
              << cell("two smallest", 16)
              << cell(exact_loss_probability(k2, smallest), 18, 6) << '\n'
              << cell("worst pair", 16) << cell(worst, 18, 6) << "  (disks "
              << worst_pair.first << "," << worst_pair.second << ")\n";
  }

  std::cout << "\n-- replication degree sweep: two biggest disks fail\n";
  std::cout << cell("k", 4) << cell("mirror loss", 14)
            << cell("need k-1 (1 parity)", 20)
            << cell("need k-2 (2 parity)", 20) << '\n';
  for (const unsigned k : {2u, 3u, 4u, 5u}) {
    const RedundantShare s(config, k);
    const std::vector<DeviceId> failed{config[0].uid, config[1].uid};
    std::cout << cell(std::to_string(k), 4)
              << cell(exact_loss_probability(s, failed, 1), 14, 6)
              << cell(exact_loss_probability(s, failed, k - 1), 20, 6)
              << cell(k >= 3 ? exact_loss_probability(s, failed, k - 2)
                             : 0.0,
                      20, 6)
              << '\n';
  }
  std::cout << "\nexpected: mirror loss 0 for k > 2; single-parity"
            << " erasure (need k-1) loses data\nunder double failure;"
            << " double-parity (need k-2) does not\n";
  return 0;
}
