// Figure 2 reproduction: LinMirror (k = 2) fairness across the paper's
// five-phase disk evolution.
//
// Start with 8 heterogeneous disks of 500k..1.2M blocks (steps of 100k);
// add two pairs continuing the ladder (1.3M/1.4M, 1.5M/1.6M); then twice
// remove the two smallest disks.  After each phase, store blocks to ~60% of
// the (usable) capacity and report the fill level of every disk -- a fair
// strategy fills every disk to the same percentage.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "src/placement/strategy_factory.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/fairness_report.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"

int main() {
  using namespace rds;
  using namespace rds::bench;

  header("Figure 2: distribution fairness for heterogeneous bins, k = 2");
  std::cout << "paper: every phase shows all disks filled to the same height"
            << " (perfectly fair)\n";

  constexpr unsigned kK = 2;
  constexpr double kFill = 0.60;

  std::unique_ptr<ReplicationStrategy> previous;
  std::uint64_t previous_balls = 0;
  for (const ScenarioPhase& phase : paper_figure2_phases()) {
    auto strategy = make_replication_strategy(PlacementKind::kRedundantShare,
                                              phase.config, kK);
    const std::vector<double> adjusted =
        usable_capacities(*strategy, phase.config);
    double usable = 0.0;
    for (const double c : adjusted) usable += c;
    const auto balls = static_cast<std::uint64_t>(kFill * usable / kK);
    const BlockMap map(*strategy, balls);
    const FairnessReport report =
        fairness_report(phase.config, adjusted, map);
    report.print(std::cout,
                 phase.label + "  (" + std::to_string(balls) + " blocks)");
    if (previous) {
      // Migration cost of the transition, over the blocks both phases hold.
      const std::uint64_t common = std::min(previous_balls, balls);
      const MovementReport moved = diff_placements(
          BlockMap(*previous, common), BlockMap(*strategy, common));
      std::cout << "  transition moved " << std::fixed
                << std::setprecision(1) << 100.0 * moved.moved_set_fraction()
                << "% of copies (theoretical minimum "
                << 100.0 * static_cast<double>(moved.optimal_moves) /
                       static_cast<double>(moved.total_copies)
                << "%)\n";
    }
    previous = std::move(strategy);
    previous_balls = balls;
  }
  std::cout << "\nexpected: fill% equal across disks within each phase"
            << " (sampling noise well under 1%);\ntransition movement close"
            << " to the capacity delta, never a reshuffle\n";
  return 0;
}
