// Table B (Section 2.2 / Lemma 2.4): usable capacity of the trivial
// replication strategy versus Redundant Share as heterogeneity grows.
//
// System: one big bin of ratio r times the small-bin size, plus 2k small
// bins.  A strategy's usable fraction is determined by the first bin to
// fill: with per-bin load shares s_i (copies per ball), the system stores
// m* = min_i b_i / s_i balls, i.e. usable = k * m* / B.  A perfectly fair
// strategy reaches 1.0 (when the configuration is feasible); the trivial
// strategy loses capacity because the big bin is under-loaded, which makes
// the small bins overflow early.
#include <algorithm>
#include <iostream>
#include <limits>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/placement/trivial_replication.hpp"
#include "src/sim/block_map.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

double usable_fraction(const ReplicationStrategy& strategy,
                       const ClusterConfig& config) {
  constexpr std::uint64_t kBalls = 200'000;
  const BlockMap map(strategy, kBalls);
  const auto counts = map.device_counts();
  double max_balls = std::numeric_limits<double>::infinity();
  for (const Device& d : config.devices()) {
    const auto it = counts.find(d.uid);
    const double share = it == counts.end()
                             ? 0.0
                             : static_cast<double>(it->second) / kBalls;
    if (share <= 0.0) continue;
    max_balls = std::min(max_balls, static_cast<double>(d.capacity) / share);
  }
  return static_cast<double>(strategy.replication()) * max_balls /
         static_cast<double>(config.total_capacity());
}

}  // namespace

int main() {
  header("Table B: capacity efficiency, trivial vs Redundant Share");
  std::cout << "system: 1 big bin (ratio r x 100) + 2k bins of 100; usable\n"
            << "fraction of total capacity before the first bin overflows\n\n";
  std::cout << cell("k", 4) << cell("ratio r", 8) << cell("trivial", 12)
            << cell("redundant-share", 18) << cell("feasible", 10) << '\n';

  for (const unsigned k : {2u, 3u, 4u}) {
    for (const double r : {1.0, 1.5, 2.0, 3.0, 5.0}) {
      std::vector<std::uint64_t> caps{
          static_cast<std::uint64_t>(r * 100.0)};
      for (unsigned i = 0; i < 2 * k; ++i) caps.push_back(100);
      const ClusterConfig config = cluster_of(caps);
      const bool feasible =
          static_cast<double>(k) * r * 100.0 <=
          static_cast<double>(config.total_capacity());

      const TrivialReplication trivial(config, k);
      const RedundantShare rs(config, k);
      std::cout << cell(std::to_string(k), 4) << cell(r, 8, 1)
                << cell(usable_fraction(trivial, config), 12, 4)
                << cell(usable_fraction(rs, config), 18, 4)
                << cell(feasible ? "yes" : "no", 10) << '\n';
    }
  }
  std::cout << "\nexpected: redundant-share ~1.0 on every feasible row (and"
            << " = B'/B on infeasible rows);\ntrivial drops below 1.0 as soon"
            << " as r > 1 and degrades with r (Lemma 2.4)\n";
  return 0;
}
