// Figure 3 reproduction: adaptivity of LinMirror (k = 2).
//
// Eight cases -- {heterogeneous, homogeneous} x {add, remove} x {biggest,
// smallest}: store blocks, apply the edit, and count the blocks placed on
// the affected bin ("used") versus the blocks that had to move ("replaced").
// Paper: replaced/used ~ 1.5 when the biggest bin changes, ~ 2.5 when the
// smallest bin changes; the factor stays nearly constant in the number of
// bins (second experiment: add one bin to 4..60 homogeneous bins).
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/redundant_share.hpp"
#include "src/sim/block_map.hpp"
#include "src/sim/movement.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace rds;
using namespace rds::bench;

constexpr unsigned kK = 2;
constexpr std::uint64_t kBalls = 120'000;

void run_case(const ClusterConfig& before, EditKind kind,
              const std::string& env, std::uint64_t ladder_step) {
  const EditResult edit = apply_edit(before, kind, /*new_uid=*/1000,
                                     ladder_step);
  const RedundantShare sb(before, kK);
  const RedundantShare sa(edit.config, kK);
  const BlockMap mb(sb, kBalls);
  const BlockMap ma(sa, kBalls);
  const MovementReport report = diff_placements(mb, ma);
  std::uint64_t affected_used = ma.count_on(edit.affected);
  if (affected_used == 0) affected_used = mb.count_on(edit.affected);

  std::cout << cell(env, 8) << cell(to_string(kind), 18)
            << cell(affected_used, 12) << cell(report.moved_set, 12)
            << cell(replaced_per_used(report, mb, ma, edit.affected), 10, 3)
            << cell(report.competitive_set(), 12, 3) << '\n';
}

}  // namespace

int main() {
  header("Figure 3: adaptivity of LinMirror (k = 2)");
  std::cout << "paper: replaced/used ~1.5 for the biggest bin, ~2.5 for the"
            << " smallest bin\n\n";

  std::cout << cell("env", 8) << cell("edit", 18) << cell("used", 12)
            << cell("replaced", 12) << cell("repl/used", 10)
            << cell("moved/opt", 12) << '\n';

  const ClusterConfig het = paper_heterogeneous_base();
  const ClusterConfig hom = homogeneous_cluster(8, 850'000);
  for (const EditKind kind :
       {EditKind::kRemoveBiggest, EditKind::kRemoveSmallest,
        EditKind::kAddBiggest, EditKind::kAddSmallest}) {
    run_case(het, kind, "het", 100'000);
  }
  for (const EditKind kind :
       {EditKind::kRemoveBiggest, EditKind::kRemoveSmallest,
        EditKind::kAddBiggest, EditKind::kAddSmallest}) {
    run_case(hom, kind, "hom", 0);
  }

  header("Figure 3b: replaced/used vs number of homogeneous bins (k = 2)");
  std::cout << cell("bins", 8) << cell("add-biggest", 14)
            << cell("add-smallest", 14) << '\n';
  for (std::size_t n = 4; n <= 60; n += 8) {
    const ClusterConfig base = homogeneous_cluster(n, 200'000);
    double factors[2] = {0.0, 0.0};
    const EditKind kinds[2] = {EditKind::kAddBiggest, EditKind::kAddSmallest};
    for (int c = 0; c < 2; ++c) {
      const EditResult edit =
          apply_edit(base, kinds[c], 1000, c == 0 ? 100'000 : 50'000);
      const RedundantShare sb(base, kK);
      const RedundantShare sa(edit.config, kK);
      const BlockMap mb(sb, 60'000);
      const BlockMap ma(sa, 60'000);
      const MovementReport report = diff_placements(mb, ma);
      factors[c] = replaced_per_used(report, mb, ma, edit.affected);
    }
    std::cout << cell(static_cast<std::uint64_t>(n), 8)
              << cell(factors[0], 14, 3) << cell(factors[1], 14, 3) << '\n';
  }
  std::cout << "\nexpected: biggest-bin column near-constant ~1.5;"
            << " smallest-bin column ~2.5\n";
  return 0;
}
