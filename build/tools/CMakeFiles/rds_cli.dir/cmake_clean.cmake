file(REMOVE_RECURSE
  "CMakeFiles/rds_cli.dir/rds_cli.cpp.o"
  "CMakeFiles/rds_cli.dir/rds_cli.cpp.o.d"
  "rds_cli"
  "rds_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rds_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
