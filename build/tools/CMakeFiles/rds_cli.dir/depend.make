# Empty dependencies file for rds_cli.
# This may be replaced when dependencies are built.
