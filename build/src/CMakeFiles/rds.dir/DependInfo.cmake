
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_config.cpp" "src/CMakeFiles/rds.dir/cluster/cluster_config.cpp.o" "gcc" "src/CMakeFiles/rds.dir/cluster/cluster_config.cpp.o.d"
  "/root/repo/src/cluster/device.cpp" "src/CMakeFiles/rds.dir/cluster/device.cpp.o" "gcc" "src/CMakeFiles/rds.dir/cluster/device.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/rds.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/capacity.cpp" "src/CMakeFiles/rds.dir/core/capacity.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/capacity.cpp.o.d"
  "/root/repo/src/core/fast_redundant_share.cpp" "src/CMakeFiles/rds.dir/core/fast_redundant_share.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/fast_redundant_share.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/CMakeFiles/rds.dir/core/hierarchical.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/hierarchical.cpp.o.d"
  "/root/repo/src/core/loss_analysis.cpp" "src/CMakeFiles/rds.dir/core/loss_analysis.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/loss_analysis.cpp.o.d"
  "/root/repo/src/core/precomputed_redundant_share.cpp" "src/CMakeFiles/rds.dir/core/precomputed_redundant_share.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/precomputed_redundant_share.cpp.o.d"
  "/root/repo/src/core/redundant_share.cpp" "src/CMakeFiles/rds.dir/core/redundant_share.cpp.o" "gcc" "src/CMakeFiles/rds.dir/core/redundant_share.cpp.o.d"
  "/root/repo/src/placement/consistent_hashing.cpp" "src/CMakeFiles/rds.dir/placement/consistent_hashing.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/consistent_hashing.cpp.o.d"
  "/root/repo/src/placement/crush.cpp" "src/CMakeFiles/rds.dir/placement/crush.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/crush.cpp.o.d"
  "/root/repo/src/placement/jump_hash.cpp" "src/CMakeFiles/rds.dir/placement/jump_hash.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/jump_hash.cpp.o.d"
  "/root/repo/src/placement/rendezvous.cpp" "src/CMakeFiles/rds.dir/placement/rendezvous.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/rendezvous.cpp.o.d"
  "/root/repo/src/placement/rush.cpp" "src/CMakeFiles/rds.dir/placement/rush.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/rush.cpp.o.d"
  "/root/repo/src/placement/share.cpp" "src/CMakeFiles/rds.dir/placement/share.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/share.cpp.o.d"
  "/root/repo/src/placement/sieve.cpp" "src/CMakeFiles/rds.dir/placement/sieve.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/sieve.cpp.o.d"
  "/root/repo/src/placement/static_placement.cpp" "src/CMakeFiles/rds.dir/placement/static_placement.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/static_placement.cpp.o.d"
  "/root/repo/src/placement/strategy.cpp" "src/CMakeFiles/rds.dir/placement/strategy.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/strategy.cpp.o.d"
  "/root/repo/src/placement/trivial_replication.cpp" "src/CMakeFiles/rds.dir/placement/trivial_replication.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/trivial_replication.cpp.o.d"
  "/root/repo/src/placement/weighted_dht.cpp" "src/CMakeFiles/rds.dir/placement/weighted_dht.cpp.o" "gcc" "src/CMakeFiles/rds.dir/placement/weighted_dht.cpp.o.d"
  "/root/repo/src/sim/block_map.cpp" "src/CMakeFiles/rds.dir/sim/block_map.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/block_map.cpp.o.d"
  "/root/repo/src/sim/disk_sim.cpp" "src/CMakeFiles/rds.dir/sim/disk_sim.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/disk_sim.cpp.o.d"
  "/root/repo/src/sim/fairness_report.cpp" "src/CMakeFiles/rds.dir/sim/fairness_report.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/fairness_report.cpp.o.d"
  "/root/repo/src/sim/movement.cpp" "src/CMakeFiles/rds.dir/sim/movement.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/movement.cpp.o.d"
  "/root/repo/src/sim/op_trace.cpp" "src/CMakeFiles/rds.dir/sim/op_trace.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/op_trace.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/CMakeFiles/rds.dir/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/scenario.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/rds.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/rds.dir/sim/workload.cpp.o.d"
  "/root/repo/src/storage/device_store.cpp" "src/CMakeFiles/rds.dir/storage/device_store.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/device_store.cpp.o.d"
  "/root/repo/src/storage/erasure/evenodd.cpp" "src/CMakeFiles/rds.dir/storage/erasure/evenodd.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/erasure/evenodd.cpp.o.d"
  "/root/repo/src/storage/erasure/gf256.cpp" "src/CMakeFiles/rds.dir/storage/erasure/gf256.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/erasure/gf256.cpp.o.d"
  "/root/repo/src/storage/erasure/parity.cpp" "src/CMakeFiles/rds.dir/storage/erasure/parity.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/erasure/parity.cpp.o.d"
  "/root/repo/src/storage/erasure/rdp.cpp" "src/CMakeFiles/rds.dir/storage/erasure/rdp.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/erasure/rdp.cpp.o.d"
  "/root/repo/src/storage/erasure/reed_solomon.cpp" "src/CMakeFiles/rds.dir/storage/erasure/reed_solomon.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/erasure/reed_solomon.cpp.o.d"
  "/root/repo/src/storage/file_store.cpp" "src/CMakeFiles/rds.dir/storage/file_store.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/file_store.cpp.o.d"
  "/root/repo/src/storage/migration.cpp" "src/CMakeFiles/rds.dir/storage/migration.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/migration.cpp.o.d"
  "/root/repo/src/storage/redundancy_scheme.cpp" "src/CMakeFiles/rds.dir/storage/redundancy_scheme.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/redundancy_scheme.cpp.o.d"
  "/root/repo/src/storage/snapshot.cpp" "src/CMakeFiles/rds.dir/storage/snapshot.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/snapshot.cpp.o.d"
  "/root/repo/src/storage/storage_pool.cpp" "src/CMakeFiles/rds.dir/storage/storage_pool.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/storage_pool.cpp.o.d"
  "/root/repo/src/storage/virtual_disk.cpp" "src/CMakeFiles/rds.dir/storage/virtual_disk.cpp.o" "gcc" "src/CMakeFiles/rds.dir/storage/virtual_disk.cpp.o.d"
  "/root/repo/src/util/alias_table.cpp" "src/CMakeFiles/rds.dir/util/alias_table.cpp.o" "gcc" "src/CMakeFiles/rds.dir/util/alias_table.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/CMakeFiles/rds.dir/util/hash.cpp.o" "gcc" "src/CMakeFiles/rds.dir/util/hash.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/rds.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/rds.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/rds.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/rds.dir/util/random.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rds.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rds.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
