# Empty compiler generated dependencies file for rds.
# This may be replaced when dependencies are built.
