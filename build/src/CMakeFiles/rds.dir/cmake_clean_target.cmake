file(REMOVE_RECURSE
  "librds.a"
)
