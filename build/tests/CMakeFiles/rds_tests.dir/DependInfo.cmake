
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alias_table.cpp" "tests/CMakeFiles/rds_tests.dir/test_alias_table.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_alias_table.cpp.o.d"
  "/root/repo/tests/test_block_map.cpp" "tests/CMakeFiles/rds_tests.dir/test_block_map.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_block_map.cpp.o.d"
  "/root/repo/tests/test_capacity.cpp" "tests/CMakeFiles/rds_tests.dir/test_capacity.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_capacity.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/rds_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_concurrency.cpp" "tests/CMakeFiles/rds_tests.dir/test_concurrency.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_concurrency.cpp.o.d"
  "/root/repo/tests/test_consistent_hashing.cpp" "tests/CMakeFiles/rds_tests.dir/test_consistent_hashing.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_consistent_hashing.cpp.o.d"
  "/root/repo/tests/test_corruption.cpp" "tests/CMakeFiles/rds_tests.dir/test_corruption.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_corruption.cpp.o.d"
  "/root/repo/tests/test_crush.cpp" "tests/CMakeFiles/rds_tests.dir/test_crush.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_crush.cpp.o.d"
  "/root/repo/tests/test_device_store.cpp" "tests/CMakeFiles/rds_tests.dir/test_device_store.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_device_store.cpp.o.d"
  "/root/repo/tests/test_disk_sim.cpp" "tests/CMakeFiles/rds_tests.dir/test_disk_sim.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_disk_sim.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/rds_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_evenodd.cpp" "tests/CMakeFiles/rds_tests.dir/test_evenodd.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_evenodd.cpp.o.d"
  "/root/repo/tests/test_exhaustive.cpp" "tests/CMakeFiles/rds_tests.dir/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_exhaustive.cpp.o.d"
  "/root/repo/tests/test_fairness_report.cpp" "tests/CMakeFiles/rds_tests.dir/test_fairness_report.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_fairness_report.cpp.o.d"
  "/root/repo/tests/test_fast_redundant_share.cpp" "tests/CMakeFiles/rds_tests.dir/test_fast_redundant_share.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_fast_redundant_share.cpp.o.d"
  "/root/repo/tests/test_file_store.cpp" "tests/CMakeFiles/rds_tests.dir/test_file_store.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_file_store.cpp.o.d"
  "/root/repo/tests/test_gf256.cpp" "tests/CMakeFiles/rds_tests.dir/test_gf256.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_gf256.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/rds_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_hash.cpp" "tests/CMakeFiles/rds_tests.dir/test_hash.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_hash.cpp.o.d"
  "/root/repo/tests/test_hierarchical.cpp" "tests/CMakeFiles/rds_tests.dir/test_hierarchical.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_hierarchical.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/rds_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rds_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_jump_hash.cpp" "tests/CMakeFiles/rds_tests.dir/test_jump_hash.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_jump_hash.cpp.o.d"
  "/root/repo/tests/test_loss_analysis.cpp" "tests/CMakeFiles/rds_tests.dir/test_loss_analysis.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_loss_analysis.cpp.o.d"
  "/root/repo/tests/test_migration.cpp" "tests/CMakeFiles/rds_tests.dir/test_migration.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_migration.cpp.o.d"
  "/root/repo/tests/test_movement.cpp" "tests/CMakeFiles/rds_tests.dir/test_movement.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_movement.cpp.o.d"
  "/root/repo/tests/test_op_trace.cpp" "tests/CMakeFiles/rds_tests.dir/test_op_trace.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_op_trace.cpp.o.d"
  "/root/repo/tests/test_parity.cpp" "tests/CMakeFiles/rds_tests.dir/test_parity.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_parity.cpp.o.d"
  "/root/repo/tests/test_precomputed_rs.cpp" "tests/CMakeFiles/rds_tests.dir/test_precomputed_rs.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_precomputed_rs.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rds_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "tests/CMakeFiles/rds_tests.dir/test_random.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/test_rdp.cpp" "tests/CMakeFiles/rds_tests.dir/test_rdp.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_rdp.cpp.o.d"
  "/root/repo/tests/test_redundancy_scheme.cpp" "tests/CMakeFiles/rds_tests.dir/test_redundancy_scheme.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_redundancy_scheme.cpp.o.d"
  "/root/repo/tests/test_redundant_share.cpp" "tests/CMakeFiles/rds_tests.dir/test_redundant_share.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_redundant_share.cpp.o.d"
  "/root/repo/tests/test_reed_solomon.cpp" "tests/CMakeFiles/rds_tests.dir/test_reed_solomon.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_reed_solomon.cpp.o.d"
  "/root/repo/tests/test_rendezvous.cpp" "tests/CMakeFiles/rds_tests.dir/test_rendezvous.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_rendezvous.cpp.o.d"
  "/root/repo/tests/test_reshape.cpp" "tests/CMakeFiles/rds_tests.dir/test_reshape.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_reshape.cpp.o.d"
  "/root/repo/tests/test_rush.cpp" "tests/CMakeFiles/rds_tests.dir/test_rush.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_rush.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/rds_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_share.cpp" "tests/CMakeFiles/rds_tests.dir/test_share.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_share.cpp.o.d"
  "/root/repo/tests/test_sieve.cpp" "tests/CMakeFiles/rds_tests.dir/test_sieve.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_sieve.cpp.o.d"
  "/root/repo/tests/test_snapshot.cpp" "tests/CMakeFiles/rds_tests.dir/test_snapshot.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_snapshot.cpp.o.d"
  "/root/repo/tests/test_static_placement.cpp" "tests/CMakeFiles/rds_tests.dir/test_static_placement.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_static_placement.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/rds_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_storage_pool.cpp" "tests/CMakeFiles/rds_tests.dir/test_storage_pool.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_storage_pool.cpp.o.d"
  "/root/repo/tests/test_trivial.cpp" "tests/CMakeFiles/rds_tests.dir/test_trivial.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_trivial.cpp.o.d"
  "/root/repo/tests/test_virtual_disk.cpp" "tests/CMakeFiles/rds_tests.dir/test_virtual_disk.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_virtual_disk.cpp.o.d"
  "/root/repo/tests/test_weighted_dht.cpp" "tests/CMakeFiles/rds_tests.dir/test_weighted_dht.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_weighted_dht.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/rds_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/rds_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
