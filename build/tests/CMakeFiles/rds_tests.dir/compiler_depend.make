# Empty compiler generated dependencies file for rds_tests.
# This may be replaced when dependencies are built.
