# Empty compiler generated dependencies file for ext_request_latency.
# This may be replaced when dependencies are built.
