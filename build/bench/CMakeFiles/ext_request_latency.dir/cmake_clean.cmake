file(REMOVE_RECURSE
  "CMakeFiles/ext_request_latency.dir/ext_request_latency.cpp.o"
  "CMakeFiles/ext_request_latency.dir/ext_request_latency.cpp.o.d"
  "ext_request_latency"
  "ext_request_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_request_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
