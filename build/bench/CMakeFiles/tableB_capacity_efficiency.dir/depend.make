# Empty dependencies file for tableB_capacity_efficiency.
# This may be replaced when dependencies are built.
