file(REMOVE_RECURSE
  "CMakeFiles/tableB_capacity_efficiency.dir/tableB_capacity_efficiency.cpp.o"
  "CMakeFiles/tableB_capacity_efficiency.dir/tableB_capacity_efficiency.cpp.o.d"
  "tableB_capacity_efficiency"
  "tableB_capacity_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableB_capacity_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
