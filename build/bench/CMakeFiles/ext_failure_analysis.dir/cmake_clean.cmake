file(REMOVE_RECURSE
  "CMakeFiles/ext_failure_analysis.dir/ext_failure_analysis.cpp.o"
  "CMakeFiles/ext_failure_analysis.dir/ext_failure_analysis.cpp.o.d"
  "ext_failure_analysis"
  "ext_failure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_failure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
