file(REMOVE_RECURSE
  "CMakeFiles/fig4_fairness_k4.dir/fig4_fairness_k4.cpp.o"
  "CMakeFiles/fig4_fairness_k4.dir/fig4_fairness_k4.cpp.o.d"
  "fig4_fairness_k4"
  "fig4_fairness_k4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fairness_k4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
