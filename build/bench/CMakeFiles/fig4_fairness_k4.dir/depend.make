# Empty dependencies file for fig4_fairness_k4.
# This may be replaced when dependencies are built.
