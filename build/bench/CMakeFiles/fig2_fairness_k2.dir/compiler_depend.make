# Empty compiler generated dependencies file for fig2_fairness_k2.
# This may be replaced when dependencies are built.
