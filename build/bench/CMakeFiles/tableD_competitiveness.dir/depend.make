# Empty dependencies file for tableD_competitiveness.
# This may be replaced when dependencies are built.
