file(REMOVE_RECURSE
  "CMakeFiles/tableD_competitiveness.dir/tableD_competitiveness.cpp.o"
  "CMakeFiles/tableD_competitiveness.dir/tableD_competitiveness.cpp.o.d"
  "tableD_competitiveness"
  "tableD_competitiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableD_competitiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
