file(REMOVE_RECURSE
  "CMakeFiles/fig1_trivial_waste.dir/fig1_trivial_waste.cpp.o"
  "CMakeFiles/fig1_trivial_waste.dir/fig1_trivial_waste.cpp.o.d"
  "fig1_trivial_waste"
  "fig1_trivial_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_trivial_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
