# Empty dependencies file for tableC_substrates.
# This may be replaced when dependencies are built.
