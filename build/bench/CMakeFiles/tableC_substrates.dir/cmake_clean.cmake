file(REMOVE_RECURSE
  "CMakeFiles/tableC_substrates.dir/tableC_substrates.cpp.o"
  "CMakeFiles/tableC_substrates.dir/tableC_substrates.cpp.o.d"
  "tableC_substrates"
  "tableC_substrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableC_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
