file(REMOVE_RECURSE
  "CMakeFiles/ext_erasure_rebuild.dir/ext_erasure_rebuild.cpp.o"
  "CMakeFiles/ext_erasure_rebuild.dir/ext_erasure_rebuild.cpp.o.d"
  "ext_erasure_rebuild"
  "ext_erasure_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_erasure_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
