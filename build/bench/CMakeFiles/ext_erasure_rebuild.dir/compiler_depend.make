# Empty compiler generated dependencies file for ext_erasure_rebuild.
# This may be replaced when dependencies are built.
