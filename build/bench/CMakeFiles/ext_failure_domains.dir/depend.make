# Empty dependencies file for ext_failure_domains.
# This may be replaced when dependencies are built.
