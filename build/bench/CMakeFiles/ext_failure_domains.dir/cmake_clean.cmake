file(REMOVE_RECURSE
  "CMakeFiles/ext_failure_domains.dir/ext_failure_domains.cpp.o"
  "CMakeFiles/ext_failure_domains.dir/ext_failure_domains.cpp.o.d"
  "ext_failure_domains"
  "ext_failure_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_failure_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
