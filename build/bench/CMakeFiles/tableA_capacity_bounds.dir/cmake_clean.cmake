file(REMOVE_RECURSE
  "CMakeFiles/tableA_capacity_bounds.dir/tableA_capacity_bounds.cpp.o"
  "CMakeFiles/tableA_capacity_bounds.dir/tableA_capacity_bounds.cpp.o.d"
  "tableA_capacity_bounds"
  "tableA_capacity_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableA_capacity_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
