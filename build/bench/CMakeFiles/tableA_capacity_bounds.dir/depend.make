# Empty dependencies file for tableA_capacity_bounds.
# This may be replaced when dependencies are built.
