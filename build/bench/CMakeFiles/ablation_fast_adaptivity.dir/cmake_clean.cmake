file(REMOVE_RECURSE
  "CMakeFiles/ablation_fast_adaptivity.dir/ablation_fast_adaptivity.cpp.o"
  "CMakeFiles/ablation_fast_adaptivity.dir/ablation_fast_adaptivity.cpp.o.d"
  "ablation_fast_adaptivity"
  "ablation_fast_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
