# Empty dependencies file for ablation_fast_adaptivity.
# This may be replaced when dependencies are built.
