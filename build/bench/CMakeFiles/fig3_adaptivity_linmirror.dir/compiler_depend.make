# Empty compiler generated dependencies file for fig3_adaptivity_linmirror.
# This may be replaced when dependencies are built.
