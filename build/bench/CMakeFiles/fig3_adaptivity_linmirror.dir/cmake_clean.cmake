file(REMOVE_RECURSE
  "CMakeFiles/fig3_adaptivity_linmirror.dir/fig3_adaptivity_linmirror.cpp.o"
  "CMakeFiles/fig3_adaptivity_linmirror.dir/fig3_adaptivity_linmirror.cpp.o.d"
  "fig3_adaptivity_linmirror"
  "fig3_adaptivity_linmirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_adaptivity_linmirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
