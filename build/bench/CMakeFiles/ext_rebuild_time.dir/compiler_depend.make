# Empty compiler generated dependencies file for ext_rebuild_time.
# This may be replaced when dependencies are built.
