file(REMOVE_RECURSE
  "CMakeFiles/ext_rebuild_time.dir/ext_rebuild_time.cpp.o"
  "CMakeFiles/ext_rebuild_time.dir/ext_rebuild_time.cpp.o.d"
  "ext_rebuild_time"
  "ext_rebuild_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rebuild_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
