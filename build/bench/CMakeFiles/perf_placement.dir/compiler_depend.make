# Empty compiler generated dependencies file for perf_placement.
# This may be replaced when dependencies are built.
