file(REMOVE_RECURSE
  "CMakeFiles/perf_placement.dir/perf_placement.cpp.o"
  "CMakeFiles/perf_placement.dir/perf_placement.cpp.o.d"
  "perf_placement"
  "perf_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
