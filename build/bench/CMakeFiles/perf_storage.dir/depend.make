# Empty dependencies file for perf_storage.
# This may be replaced when dependencies are built.
