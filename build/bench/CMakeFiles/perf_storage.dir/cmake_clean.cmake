file(REMOVE_RECURSE
  "CMakeFiles/perf_storage.dir/perf_storage.cpp.o"
  "CMakeFiles/perf_storage.dir/perf_storage.cpp.o.d"
  "perf_storage"
  "perf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
