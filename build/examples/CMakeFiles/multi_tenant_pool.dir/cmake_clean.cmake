file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_pool.dir/multi_tenant_pool.cpp.o"
  "CMakeFiles/multi_tenant_pool.dir/multi_tenant_pool.cpp.o.d"
  "multi_tenant_pool"
  "multi_tenant_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
