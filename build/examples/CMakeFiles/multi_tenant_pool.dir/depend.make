# Empty dependencies file for multi_tenant_pool.
# This may be replaced when dependencies are built.
