file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_datacenter.dir/heterogeneous_datacenter.cpp.o"
  "CMakeFiles/heterogeneous_datacenter.dir/heterogeneous_datacenter.cpp.o.d"
  "heterogeneous_datacenter"
  "heterogeneous_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
