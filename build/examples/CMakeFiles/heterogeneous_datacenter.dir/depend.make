# Empty dependencies file for heterogeneous_datacenter.
# This may be replaced when dependencies are built.
