file(REMOVE_RECURSE
  "CMakeFiles/erasure_recovery.dir/erasure_recovery.cpp.o"
  "CMakeFiles/erasure_recovery.dir/erasure_recovery.cpp.o.d"
  "erasure_recovery"
  "erasure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erasure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
