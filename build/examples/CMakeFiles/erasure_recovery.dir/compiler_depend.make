# Empty compiler generated dependencies file for erasure_recovery.
# This may be replaced when dependencies are built.
